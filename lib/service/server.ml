module J = Chg.Json
module G = Chg.Graph
module P = Protocol

(* Connection-level accounting for the networked front end (lib/net).
   The record lives here — not in lib/net — so the series are part of
   every server's registry and the `metrics`/`stats` verbs report them
   deterministically (all zero) in stdin/stdout mode too. *)
type net_stats = {
  net_active : int Atomic.t;  (* connections currently open *)
  net_admitted : int Atomic.t;  (* requests admitted, not yet answered *)
  net_accepted : Telemetry.Counter.t;
  net_closed : Telemetry.Counter.t;
  net_timed_out : Telemetry.Counter.t;  (* idle + slowloris closes *)
  net_overloaded : Telemetry.Counter.t;  (* explicit overload rejections *)
}

(* A [Follower] serves the read-only verbs only: every mutating verb is
   answered [not_leader], and its sessions change exclusively through
   the replication applier ({!install_snapshot} / {!apply_replicated}),
   which mirrors the leader's snapshot + WAL stream. *)
type role = Leader | Follower

type t = {
  role : role;
  config : Session.config;
  store : Store.t option;  (* durability, when serving --store *)
  sessions : (string, Session.t) Hashtbl.t;
  mutable session_order : string list;  (* open order, for stats *)
  mutable next_session : int;
  sink : Telemetry.Sink.t;
  spans : Telemetry.Span.t;
  requests : Telemetry.Counter.t;
  errors : Telemetry.Counter.t;
  sessions_opened : Telemetry.Counter.t;
  sessions_closed : Telemetry.Counter.t;
  lookups : Telemetry.Counter.t;
  batch_requests : Telemetry.Counter.t;
  batch_queries : Telemetry.Counter.t;
  mutations : Telemetry.Counter.t;
  lints : Telemetry.Counter.t;
  (* request-level observability *)
  registry : Telemetry.Registry.t;
  start_ns : int;
  mutable next_seq : int;  (* arrival order, 1-based in the log *)
  request_log : Request_log.t option;
  slow_ns : int option;  (* latency threshold; None = nothing is slow *)
  slow_requests : Telemetry.Counter.t;
  flight : Request_log.recorder;
  frame_decode_ns : Telemetry.Histogram.t;
      (* time to parse + type one binary (1b) frame, recorded for every
         frame whether or not it decodes — the framing-overhead series
         the JSON path's parse cost is compared against *)
  net : net_stats;
  inflight : (string * int Atomic.t) list;  (* per-verb, fixed at create *)
  obs_mutex : Mutex.t;
      (* serializes [observe] and exposition renders across worker
         domains: per-request accounting (histogram record, seq, ring,
         log line) commits atomically with respect to scrapes, so
         Expocheck's monotonicity contract holds under concurrency *)
}

let verbs =
  [ "open"; "lookup"; "batch_lookup"; "mutate"; "lint"; "snapshot";
    "restore"; "stats"; "metrics"; "symbols"; "close" ]

let create ?(role = Leader) ?(config = Session.default_config)
    ?(trace = false) ?store ?request_log ?slow_ms () =
  let sink =
    if trace then Telemetry.Sink.create () else Telemetry.Sink.null
  in
  let registry = Telemetry.Registry.create () in
  let slow_requests = Telemetry.Counter.make "slow_requests" in
  (* registered eagerly so the series exists (empty) before the first
     binary frame arrives — metrics goldens rely on it *)
  let frame_decode_ns =
    Telemetry.Registry.histogram registry
      ~help:"Binary (cxxlookup-rpc/1b) frame decode time, nanoseconds."
      "cxxlookup_server_frame_decode_ns"
  in
  let net =
    { net_active = Atomic.make 0;
      net_admitted = Atomic.make 0;
      net_accepted = Telemetry.Counter.make "connections_accepted";
      net_closed = Telemetry.Counter.make "connections_closed";
      net_timed_out = Telemetry.Counter.make "connections_timed_out";
      net_overloaded = Telemetry.Counter.make "overloaded" }
  in
  let t =
    { role;
      config;
      store;
      sessions = Hashtbl.create 8;
      session_order = [];
      next_session = 0;
      sink;
      spans = Telemetry.Span.make sink;
      requests = Telemetry.Counter.make "requests";
      errors = Telemetry.Counter.make "errors";
      sessions_opened = Telemetry.Counter.make "sessions_opened";
      sessions_closed = Telemetry.Counter.make "sessions_closed";
      lookups = Telemetry.Counter.make "lookups";
      batch_requests = Telemetry.Counter.make "batch_requests";
      batch_queries = Telemetry.Counter.make "batch_queries";
      mutations = Telemetry.Counter.make "mutations";
      lints = Telemetry.Counter.make "lints";
      registry;
      start_ns = Telemetry.Clock.now_ns ();
      next_seq = 0;
      request_log;
      slow_ns = Option.map (fun ms -> ms * 1_000_000) slow_ms;
      slow_requests;
      flight = Telemetry.Ring.create Request_log.default_flight_capacity;
      frame_decode_ns;
      net;
      inflight = List.map (fun v -> (v, Atomic.make 0)) verbs;
      obs_mutex = Mutex.create () }
  in
  Telemetry.Registry.gauge registry
    ~help:"Nanoseconds since this server was created."
    "cxxlookup_server_uptime_ns"
    (fun () -> Telemetry.Clock.now_ns () - t.start_ns);
  Telemetry.Registry.gauge registry ~help:"Sessions currently open."
    "cxxlookup_server_sessions_open"
    (fun () -> Hashtbl.length t.sessions);
  Telemetry.Registry.attach_counter registry
    ~help:"Requests whose latency crossed the --slow-ms threshold."
    "cxxlookup_server_slow_requests_total" slow_requests;
  Telemetry.Registry.gauge registry
    ~help:"Connections currently open on the networked server."
    "cxxlookup_server_connections_active"
    (fun () -> Atomic.get net.net_active);
  Telemetry.Registry.gauge registry
    ~help:"Requests admitted and not yet answered (global admission queue depth)."
    "cxxlookup_server_admission_queue_depth"
    (fun () -> Atomic.get net.net_admitted);
  Telemetry.Registry.attach_counter registry
    ~help:"Connections accepted by the networked server."
    "cxxlookup_server_connections_accepted_total" net.net_accepted;
  Telemetry.Registry.attach_counter registry
    ~help:"Connections closed (any reason, including timeouts)."
    "cxxlookup_server_connections_closed_total" net.net_closed;
  Telemetry.Registry.attach_counter registry
    ~help:"Connections closed by the idle or slowloris timeout."
    "cxxlookup_server_connections_timed_out_total" net.net_timed_out;
  Telemetry.Registry.attach_counter registry
    ~help:"Requests rejected with the overloaded error code."
    "cxxlookup_server_overloaded_total" net.net_overloaded;
  List.iter
    (fun (verb, gauge) ->
      Telemetry.Registry.gauge registry
        ~help:"Requests currently executing, by verb."
        ~labels:[ ("verb", verb) ]
        "cxxlookup_server_inflight"
        (fun () -> Atomic.get gauge))
    t.inflight;
  (match store with None -> () | Some s -> Store.register s registry);
  t

let sink t = t.sink
let role t = t.role
let store t = t.store
let registry t = t.registry
let net t = t.net
let uptime_ns t = Telemetry.Clock.now_ns () - t.start_ns
let dump_flight t oc = Request_log.dump t.flight oc

let counters t =
  List.map
    (fun c -> (Telemetry.Counter.name c, Telemetry.Counter.value c))
    [ t.requests; t.errors; t.sessions_opened; t.sessions_closed;
      t.lookups; t.batch_requests; t.batch_queries; t.mutations; t.lints ]

(* ---- per-verb handlers --------------------------------------------- *)

exception Reply_error of P.error_code * string

let fail code fmt = Printf.ksprintf (fun msg -> raise (Reply_error (code, msg))) fmt

let session t = function
  | None -> fail P.Bad_request "missing field \"session\""
  | Some name ->
    (match Hashtbl.find_opt t.sessions name with
    | Some s -> s
    | None -> fail P.Unknown_session "no open session %S" name)

let graph_of_hierarchy = function
  | P.Chg_json j ->
    (match Chg.Serialize.of_json j with
    | Ok g -> g
    | Error msg -> fail P.Bad_hierarchy "%s" msg)
  | P.Source src ->
    let r = Frontend.Sema.analyze_source src in
    if not (Frontend.Sema.ok r) then
      fail P.Bad_hierarchy "source has errors: %s"
        (match r.Frontend.Sema.diagnostics with
        | d :: _ -> Frontend.Diagnostic.to_string d
        | [] -> "unknown");
    r.Frontend.Sema.graph

(* ---- durability ----------------------------------------------------

   Under a store, a session is durable from birth: [open] writes its
   epoch-0 snapshot (superseding any previous lineage stored under the
   name), every applied mutation appends one WAL record, and an
   outgrown WAL is compacted into a fresh snapshot.  [snapshot] forces
   that compaction; [restore] reopens from the newest valid snapshot
   plus the WAL tail. *)

let store_mutation_of = function
  | P.Add_class { mc_name; mc_bases; mc_members } ->
    Store.Mutation.Add_class
      { ac_name = mc_name; ac_bases = mc_bases; ac_members = mc_members }
  | P.Add_member { mm_class; mm_member } ->
    Store.Mutation.Add_member { am_class = mm_class; am_member = mm_member }

let snapshot_of_session s =
  { Store.Snapshot.s_session = Session.name s;
    s_epoch = Session.epoch s;
    s_protocol = P.version;
    s_graph = Session.graph s;
    s_columns = Session.compiled_columns s }

let write_snapshot store s =
  try Store.write_snapshot store (snapshot_of_session s)
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    fail P.Store_error "snapshot failed: %s" msg

let log_mutation t s m =
  match t.store with
  | None -> ()
  | Some store ->
    let session = Session.name s in
    Store.log_mutation store ~session ~epoch:(Session.epoch s)
      (store_mutation_of m);
    if Store.needs_compaction store ~session then begin
      Store.note_compaction store;
      ignore (write_snapshot store s)
    end

let register_session t s =
  let name = Session.name s in
  Hashtbl.add t.sessions name s;
  t.session_order <- t.session_order @ [ name ];
  Telemetry.Counter.incr t.sessions_opened;
  Session.register s t.registry

let handle_open t ~session:requested hierarchy =
  let name =
    match requested with
    | Some n ->
      if Hashtbl.mem t.sessions n then
        fail P.Duplicate_session "session %S is already open" n;
      n
    | None ->
      let rec pick () =
        let n = Printf.sprintf "s%d" t.next_session in
        t.next_session <- t.next_session + 1;
        if Hashtbl.mem t.sessions n then pick () else n
      in
      pick ()
  in
  let g = graph_of_hierarchy hierarchy in
  let s = Session.create ~config:t.config ~name g in
  (match t.store with
  | None -> ()
  | Some store ->
    Store.reset_session store name;
    ignore (write_snapshot store s));
  register_session t s;
  [ ("protocol", J.String P.version);
    ("session", J.String name);
    ("classes", J.Int (G.num_classes g));
    ("edges", J.Int (G.num_edges g));
    ("members", J.Int (List.length (G.member_names g))) ]

let query_fields s (q : P.query) =
  match Session.lookup s q.P.q_class q.P.q_member with
  | Error cls -> fail P.Unknown_class "unknown class %S" cls
  | Ok (v, served) ->
    ("class", J.String q.P.q_class)
    :: ("member", J.String q.P.q_member)
    :: P.verdict_fields (Session.graph s) v
    @ [ ("via", J.String (Session.served_string served)) ]

(* The linearized-semantics twin of [query_fields]: answered from the
   session's per-variant MRO table, reported as ["via":"mro"] with the
   variant echoed, so C++-semantics responses stay byte-identical. *)
let mro_query_fields s v (q : P.query) =
  match Session.mro_lookup s v q.P.q_class q.P.q_member with
  | Error cls -> fail P.Unknown_class "unknown class %S" cls
  | Ok verdict ->
    ("class", J.String q.P.q_class)
    :: ("member", J.String q.P.q_member)
    :: P.verdict_fields (Session.graph s) verdict
    @ [ ("semantics", J.String (Mro.variant_string v));
        ("via", J.String "mro") ]

let handle_lookup t s sem q =
  Telemetry.Counter.incr t.lookups;
  match sem with
  | Mro.Cpp -> query_fields s q
  | Mro.Linearized v -> mro_query_fields s v q

let handle_batch t s sem qs =
  Telemetry.Counter.incr t.batch_requests;
  Telemetry.Counter.add t.batch_queries (List.length qs);
  let resolved = ref 0 and ambiguous = ref 0 and not_found = ref 0 in
  let count v =
    match v with
    | Some (Lookup_core.Engine.Red _) -> incr resolved
    | Some (Lookup_core.Engine.Blue _) -> incr ambiguous
    | None -> incr not_found
  in
  let unknown_class (q : P.query) cls =
    J.Obj
      [ ("class", J.String q.P.q_class);
        ("member", J.String q.P.q_member);
        ("error", J.String "unknown_class");
        ("message", J.String (Printf.sprintf "unknown class %S" cls)) ]
  in
  let results =
    List.map
      (fun (q : P.query) ->
        match sem with
        | Mro.Cpp ->
          (match Session.lookup s q.P.q_class q.P.q_member with
          | Error cls -> unknown_class q cls
          | Ok (v, served) ->
            count v;
            J.Obj
              (("class", J.String q.P.q_class)
               :: ("member", J.String q.P.q_member)
               :: P.verdict_fields (Session.graph s) v
               @ [ ("via", J.String (Session.served_string served)) ]))
        | Mro.Linearized variant ->
          (match
             Session.mro_lookup s variant q.P.q_class q.P.q_member
           with
          | Error cls -> unknown_class q cls
          | Ok v ->
            count v;
            J.Obj
              (("class", J.String q.P.q_class)
               :: ("member", J.String q.P.q_member)
               :: P.verdict_fields (Session.graph s) v
               @ [ ("semantics", J.String (Mro.variant_string variant));
                   ("via", J.String "mro") ])))
      qs
  in
  [ ("results", J.List results);
    ("resolved", J.Int !resolved);
    ("ambiguous", J.Int !ambiguous);
    ("not_found", J.Int !not_found) ]

let handle_mutate t s m =
  match m with
  | P.Add_class { mc_name; mc_bases; mc_members } ->
    Telemetry.Counter.incr t.mutations;
    (try
       ignore (Session.add_class s ~cls:mc_name ~bases:mc_bases
                 ~members:mc_members);
       log_mutation t s m;
       [ ("session", J.String (Session.name s));
         ("added", J.String mc_name);
         ("classes", J.Int (G.num_classes (Session.graph s)));
         ("epoch", J.Int (Session.epoch s)) ]
     with G.Error e ->
       let code =
         match e with
         | G.Unknown_class _ | G.Unknown_base _ -> P.Unknown_class
         | _ -> P.Bad_hierarchy
       in
       fail code "%s" (G.error_to_string e))
  | P.Add_member { mm_class; mm_member } ->
    Telemetry.Counter.incr t.mutations;
    (try
       let rows, invalidated = Session.add_member s ~cls:mm_class mm_member in
       log_mutation t s m;
       [ ("session", J.String (Session.name s));
         ("class", J.String mm_class);
         ("member", J.String mm_member.G.m_name);
         ("rows_recomputed", J.Int rows);
         ("table_invalidated", J.Bool invalidated);
         ("epoch", J.Int (Session.epoch s)) ]
     with G.Error e ->
       let code =
         match e with
         | G.Unknown_class _ -> P.Unknown_class
         | _ -> P.Bad_hierarchy
       in
       fail code "%s" (G.error_to_string e))

let handle_lint t s sem rules =
  Telemetry.Counter.incr t.lints;
  let rules =
    match rules with
    | None -> Lint.Rule.default_rules
    | Some ids ->
      (match ids with
      | [] -> fail P.Bad_request "empty rule list"
      | _ ->
        List.map
          (fun id ->
            match Lint.Rule.of_string id with
            | Some r -> r
            | None -> fail P.Bad_request "unknown lint rule %S" id)
          ids)
  in
  let g = Session.graph s in
  let findings =
    Lint.run
      ~config:{ Lint.default_config with rules }
      ~semantics:sem
      ~jobs:t.config.Session.jobs
      (Chg.Closure.compute g)
  in
  let errors, warnings, notes = Lint.summary findings in
  let per_rule =
    List.filter_map
      (fun r ->
        match
          List.length (List.filter (fun f -> f.Lint.f_rule = r) findings)
        with
        | 0 -> None
        | n -> Some (Lint.Rule.to_string r, J.Int n))
      Lint.Rule.all
  in
  [ ("session", J.String (Session.name s));
    ("epoch", J.Int (Session.epoch s));
    ("diagnostics", J.List (List.map (fun f -> Lint.finding_json f) findings));
    ("errors", J.Int errors);
    ("warnings", J.Int warnings);
    ("notes", J.Int notes);
    ("rules", J.Obj per_rule) ]

let handle_snapshot t s =
  match t.store with
  | None ->
    fail P.Store_error "no store configured (run: cxxlookup serve --store DIR)"
  | Some store ->
    let bytes = write_snapshot store s in
    [ ("session", J.String (Session.name s));
      ("epoch", J.Int (Session.epoch s));
      ("bytes", J.Int bytes) ]

(* Rebuild a session from a recovery: restore the snapshot (graph +
   compiled columns), then replay the WAL tail through the session's
   normal mutation path — but never back into the WAL, which already
   holds these records. *)
let session_of_recovery t name rv =
  let snap = rv.Store.rv_snapshot in
  let s =
    Session.restore ~config:t.config ~name
      ~epoch:snap.Store.Snapshot.s_epoch
      ~columns:snap.Store.Snapshot.s_columns snap.Store.Snapshot.s_graph
  in
  List.iter
    (fun (r : Store.Wal.record) ->
      match r.Store.Wal.rc_mutation with
      | Store.Mutation.Add_class { ac_name; ac_bases; ac_members } ->
        ignore
          (Session.add_class s ~cls:ac_name ~bases:ac_bases
             ~members:ac_members)
      | Store.Mutation.Add_member { am_class; am_member } ->
        ignore (Session.add_member s ~cls:am_class am_member))
    rv.Store.rv_replayed;
  s

let handle_restore t ~session:requested =
  match t.store with
  | None ->
    fail P.Store_error "no store configured (run: cxxlookup serve --store DIR)"
  | Some store ->
    let name =
      match requested with
      | None -> fail P.Bad_request "missing field \"session\""
      | Some n -> n
    in
    if Hashtbl.mem t.sessions name then
      fail P.Duplicate_session "session %S is already open" name;
    (match Store.recover store name with
    | Error msg -> fail P.Store_error "%s" msg
    | Ok None -> fail P.Store_error "nothing stored under session %S" name
    | Ok (Some rv) ->
      let s =
        try session_of_recovery t name rv
        with G.Error e ->
          fail P.Store_error "replay failed: %s" (G.error_to_string e)
      in
      register_session t s;
      [ ("protocol", J.String P.version);
        ("session", J.String name);
        ("epoch", J.Int (Session.epoch s));
        ("classes", J.Int (G.num_classes (Session.graph s)));
        ("replayed", J.Int (List.length rv.Store.rv_replayed));
        ("torn_tail", J.Bool rv.Store.rv_torn) ])

(* The interned-id tables for the binary hot path: class ids are graph
   ids, member ids the session's dense intern order.  Served over JSON
   too, so a client can bootstrap ids before switching framing. *)
let handle_symbols s =
  let epoch, classes, members = Session.symbols s in
  let strings a = J.List (Array.to_list (Array.map (fun n -> J.String n) a)) in
  [ ("session", J.String (Session.name s));
    ("epoch", J.Int epoch);
    ("classes", strings classes);
    ("members", strings members) ]

let handle_metrics t =
  (* render under the observation mutex: a scrape never sees a request
     whose histogram bump landed but whose counter bump has not *)
  let body =
    Mutex.protect t.obs_mutex (fun () ->
        Telemetry.Prometheus.render t.registry)
  in
  [ ("format", J.String "text/plain; version=0.0.4");
    ("body", J.String body) ]

let render_metrics t =
  Mutex.protect t.obs_mutex (fun () -> Telemetry.Prometheus.render t.registry)

(* Per-verb and per-error-code views out of the registry: the same
   labelled series the exposition renders, re-shaped as a JSON object.
   find_values is sorted, so the object's key order is stable. *)
let labelled_counts t metric label =
  List.filter_map
    (fun (labels, v) ->
      match List.assoc_opt label labels with
      | Some key -> Some (key, J.Int v)
      | None -> None)
    (Telemetry.Registry.find_values t.registry metric)

let handle_stats t = function
  | Some _ as sess ->
    let s = session t sess in
    [ ("protocol", J.String P.version);
      ("session", J.String (Session.name s));
      ("epoch", J.Int (Session.epoch s));
      ("stats", Session.stats_json s) ]
  | None ->
    let open_sessions =
      List.filter (fun n -> Hashtbl.mem t.sessions n) t.session_order
    in
    let store_fields =
      match t.store with
      | None -> []
      | Some store ->
        [ ( "store",
            J.Obj
              (("dir", J.String (Store.dir store))
               :: List.map
                    (fun (k, v) -> (k, J.Int v))
                    (Store.counters store)) ) ]
    in
    [ ("protocol", J.String P.version);
      ( "service",
        J.Obj
          (List.map (fun (k, v) -> (k, J.Int v)) (counters t)
           @ [ ("sessions_open", J.Int (Hashtbl.length t.sessions));
               ("uptime_ns", J.Int (uptime_ns t));
               ( "verbs",
                 J.Obj
                   (labelled_counts t "cxxlookup_server_requests_total"
                      "verb") );
               ( "error_codes",
                 J.Obj
                   (labelled_counts t "cxxlookup_server_errors_total"
                      "code") );
               ( "net",
                 J.Obj
                   [ ("connections_active", J.Int (Atomic.get t.net.net_active));
                     ( "connections_accepted",
                       J.Int (Telemetry.Counter.value t.net.net_accepted) );
                     ( "connections_closed",
                       J.Int (Telemetry.Counter.value t.net.net_closed) );
                     ( "connections_timed_out",
                       J.Int (Telemetry.Counter.value t.net.net_timed_out) );
                     ( "admission_queue_depth",
                       J.Int (Atomic.get t.net.net_admitted) );
                     ( "overloaded",
                       J.Int (Telemetry.Counter.value t.net.net_overloaded) )
                   ] ) ]) );
      ( "sessions",
        J.List
          (List.map
             (fun n -> Session.stats_json (Hashtbl.find t.sessions n))
             open_sessions) ) ]
    @ store_fields

let handle_close t s =
  let name = Session.name s in
  Hashtbl.remove t.sessions name;
  Telemetry.Counter.incr t.sessions_closed;
  (* durable state outlives the close; make sure it is actually on disk *)
  (match t.store with None -> () | Some store -> Store.sync store);
  [ ("session", J.String name); ("closed", J.Bool true) ]

let op_name = P.op_string

(* One finished request: per-verb latency histogram and request
   counter, per-error-code counter, slow-threshold accounting, a
   flight-recorder push, and (when configured) one JSON log line.
   Registry lookups are find-or-create — one hash probe each on the
   steady path.  The response line's byte count is measured only when
   the log is on: measuring means re-serializing the response. *)
(* [frame_bytes]/[via] are the binary path's overrides: a frame response
   is not a JSON document, so its byte count and serving layer arrive
   precomputed instead of being re-derived from [resp]. *)
let observe ?conn ?frame_bytes ?via t ~verb ~session ~id ~t0 ~outcome resp =
  let latency = Telemetry.Clock.elapsed_ns ~since:t0 in
  Mutex.protect t.obs_mutex @@ fun () ->
  Telemetry.Histogram.record
    (Telemetry.Registry.histogram t.registry
       ~help:"Request latency by verb, nanoseconds."
       ~labels:[ ("verb", verb) ]
       "cxxlookup_server_request_duration_ns")
    latency;
  Telemetry.Counter.incr
    (Telemetry.Registry.counter t.registry
       ~help:"Requests handled, by verb (rejected lines count as verb=invalid)."
       ~labels:[ ("verb", verb) ]
       "cxxlookup_server_requests_total");
  if outcome <> "ok" then
    Telemetry.Counter.incr
      (Telemetry.Registry.counter t.registry
         ~help:"Error responses, by code."
         ~labels:[ ("code", outcome) ]
         "cxxlookup_server_errors_total");
  let slow = match t.slow_ns with Some s -> latency >= s | None -> false in
  if slow then Telemetry.Counter.incr t.slow_requests;
  t.next_seq <- t.next_seq + 1;
  let bytes =
    match (frame_bytes, t.request_log) with
    | Some n, _ -> n
    | None, Some _ -> String.length (J.to_string resp)
    | None, None -> 0
  in
  let via =
    match via with
    | Some _ as v -> v
    | None ->
      (match J.member "via" resp with
      | Ok (J.String v) -> Some v
      | _ -> None)
  in
  let entry =
    { Request_log.e_seq = t.next_seq; e_conn = conn; e_verb = verb;
      e_session = session;
      e_id = id; e_outcome = outcome; e_latency_ns = latency;
      e_bytes = bytes; e_via = via; e_slow = slow }
  in
  Telemetry.Ring.push t.flight entry;
  match t.request_log with
  | Some lg -> Request_log.log lg entry
  | None -> ()

let handle_request ?conn t (rq : P.request) =
  Telemetry.Counter.incr t.requests;
  let verb = op_name rq.P.rq_op in
  let inflight = List.assoc_opt verb t.inflight in
  Option.iter Atomic.incr inflight;
  let t0 = Telemetry.Clock.now_ns () in
  let run () =
    if t.role = Follower && not (P.read_only rq.P.rq_op) then
      fail P.Not_leader
        "this node is a read-only replica; send %S to the leader" verb;
    match rq.P.rq_op with
    | P.Open { o_session; o_hierarchy } ->
      handle_open t ~session:o_session o_hierarchy
    | P.Lookup { lk_query; lk_semantics } ->
      handle_lookup t (session t rq.P.rq_session) lk_semantics lk_query
    | P.Batch_lookup { bl_queries; bl_semantics } ->
      handle_batch t (session t rq.P.rq_session) bl_semantics bl_queries
    | P.Mutate m -> handle_mutate t (session t rq.P.rq_session) m
    | P.Lint { l_rules; l_semantics } ->
      handle_lint t (session t rq.P.rq_session) l_semantics l_rules
    | P.Snapshot -> handle_snapshot t (session t rq.P.rq_session)
    | P.Restore -> handle_restore t ~session:rq.P.rq_session
    | P.Stats -> handle_stats t rq.P.rq_session
    | P.Metrics -> handle_metrics t
    | P.Symbols -> handle_symbols (session t rq.P.rq_session)
    | P.Close -> handle_close t (session t rq.P.rq_session)
  in
  let run () =
    if Telemetry.Sink.enabled t.sink then begin
      Telemetry.Sink.emit t.sink "request"
        (("op", Telemetry.Event.Str verb)
         ::
         (match rq.P.rq_session with
         | Some s -> [ ("session", Telemetry.Event.Str s) ]
         | None -> []));
      Telemetry.Span.run t.spans ("rpc:" ^ verb) run
    end
    else run ()
  in
  let outcome, internal, resp =
    match run () with
    | fields -> ("ok", false, P.ok_response ~id:rq.P.rq_id fields)
    | exception Reply_error (code, msg) ->
      Telemetry.Counter.incr t.errors;
      (P.code_string code, false, P.error_response ~id:rq.P.rq_id code msg)
    | exception exn ->
      (* a bug, not a bad request: answer [internal] instead of dying,
         and dump the flight recorder below so the requests leading
         here are preserved *)
      Telemetry.Counter.incr t.errors;
      ( P.code_string P.Internal,
        true,
        P.error_response ~id:rq.P.rq_id P.Internal (Printexc.to_string exn) )
  in
  Option.iter Atomic.decr inflight;
  observe ?conn t ~verb ~session:rq.P.rq_session ~id:rq.P.rq_id ~t0 ~outcome
    resp;
  (* after observe, so the failing request itself is in the ring *)
  if internal then dump_flight t stderr;
  resp

let observe_rejected ?conn t ~verb ~id ~code resp =
  observe ?conn t ~verb ~session:None ~id
    ~t0:(Telemetry.Clock.now_ns ())
    ~outcome:(P.code_string code) resp

(* A request refused without execution — the networked server's
   admission control and framing guards (overload, oversized line)
   answer through here so rejections still hit the request counters,
   the flight recorder and the log. *)
let reject ?conn t ~verb ~id code msg =
  Telemetry.Counter.incr t.requests;
  Telemetry.Counter.incr t.errors;
  if code = P.Overloaded then Telemetry.Counter.incr t.net.net_overloaded;
  let resp = P.error_response ~id code msg in
  observe_rejected ?conn t ~verb ~id ~code resp;
  resp

let handle_json ?conn t j =
  match P.request_of_json j with
  | Ok rq -> handle_request ?conn t rq
  | Error (id, code, msg) ->
    Telemetry.Counter.incr t.requests;
    Telemetry.Counter.incr t.errors;
    let resp = P.error_response ~id code msg in
    observe_rejected ?conn t ~verb:"invalid" ~id ~code resp;
    resp

let handle_line ?conn t line =
  match P.parse_request line with
  | Ok rq -> handle_request ?conn t rq
  | Error (id, code, msg) ->
    Telemetry.Counter.incr t.requests;
    Telemetry.Counter.incr t.errors;
    let resp = P.error_response ~id code msg in
    observe_rejected ?conn t ~verb:"invalid" ~id ~code resp;
    resp

(* [reject]'s binary twin: refuse a frame without executing it (the
   networked server's admission control and oversized-frame guard),
   with identical accounting, answering a binary error frame. *)
let reject_frame ?conn t ~verb ~id code msg =
  Telemetry.Counter.incr t.requests;
  Telemetry.Counter.incr t.errors;
  if code = P.Overloaded then Telemetry.Counter.incr t.net.net_overloaded;
  let out = Frame.encode_response ~id (Frame.Err (code, msg)) in
  observe ?conn ~frame_bytes:(String.length out) t ~verb ~session:None
    ~id:(J.Int id)
    ~t0:(Telemetry.Clock.now_ns ())
    ~outcome:(P.code_string code) (J.Obj []);
  out

(* ---- the binary (cxxlookup-rpc/1b) hot path ------------------------

   Frames answer through the same accounting as the JSON verbs — the
   shared per-verb histograms/counters, flight recorder and request log
   — with classes and members addressed by interned ids (lib/service/
   frame.ml has the wire format; session.mli the id assignment).  A
   lookup whose member column is cached in the session symtab runs
   int-only end to end: no JSON, no hashing, no allocation. *)

let frame_lookup t s ~cls ~member via =
  Telemetry.Counter.incr t.lookups;
  match Session.lookup_code s ~cls ~member with
  | Ok (code, served) ->
    via := Some (Session.served_string served);
    Frame.Ok_lookup code
  | Error `Bad_class -> fail P.Unknown_class "unknown class id %d" cls
  | Error `Bad_member -> fail P.Bad_request "unknown member id %d" member

(* Unlike the JSON batch (which embeds per-query error objects), a bad
   id fails the whole binary batch: ids come from the server's own
   symbols/delta stream, so an out-of-range id is a client bug, not
   data-dependent drift worth per-query reporting. *)
let frame_batch t s pairs =
  Telemetry.Counter.incr t.batch_requests;
  Telemetry.Counter.add t.batch_queries (Array.length pairs);
  let resolved = ref 0 and ambiguous = ref 0 and not_found = ref 0 in
  let codes =
    Array.map
      (fun (cls, member) ->
        match Session.lookup_code s ~cls ~member with
        | Ok (code, _) ->
          if code >= 0 then incr resolved
          else if code = -2 then incr ambiguous
          else incr not_found;
          code
        | Error `Bad_class -> fail P.Unknown_class "unknown class id %d" cls
        | Error `Bad_member ->
          fail P.Bad_request "unknown member id %d" member)
      pairs
  in
  Frame.Ok_batch
    { ob_codes = codes; ob_resolved = !resolved; ob_ambiguous = !ambiguous;
      ob_not_found = !not_found }

let frame_add_member t s ~cls:cid member =
  Telemetry.Counter.incr t.mutations;
  let g = Session.graph s in
  if cid < 0 || cid >= G.num_classes g then
    fail P.Unknown_class "unknown class id %d" cid;
  let cls = G.name g cid in
  let before = Session.num_member_symbols s in
  try
    let rows, invalidated = Session.add_member s ~cls member in
    log_mutation t s (P.Add_member { mm_class = cls; mm_member = member });
    let oam_member =
      match Session.member_symbol s member.G.m_name with
      | Some id -> id
      | None -> fail P.Internal "member %S not interned" member.G.m_name
    in
    Frame.Ok_add_member
      { oam_member; oam_rows = rows; oam_invalidated = invalidated;
        oam_epoch = Session.epoch s;
        oam_new_symbols = Session.member_symbols_from s before }
  with G.Error e ->
    let code =
      match e with G.Unknown_class _ -> P.Unknown_class | _ -> P.Bad_hierarchy
    in
    fail code "%s" (G.error_to_string e)

let frame_add_class t s ~name ~bases ~members =
  Telemetry.Counter.incr t.mutations;
  let before = Session.num_member_symbols s in
  try
    let cid = Session.add_class s ~cls:name ~bases ~members in
    log_mutation t s
      (P.Add_class { mc_name = name; mc_bases = bases; mc_members = members });
    Frame.Ok_add_class
      { oac_class = cid;
        oac_classes = G.num_classes (Session.graph s);
        oac_epoch = Session.epoch s;
        oac_new_symbols = Session.member_symbols_from s before }
  with G.Error e ->
    let code =
      match e with
      | G.Unknown_class _ | G.Unknown_base _ -> P.Unknown_class
      | _ -> P.Bad_hierarchy
    in
    fail code "%s" (G.error_to_string e)

let frame_symbols s =
  let epoch, classes, members = Session.symbols s in
  Frame.Ok_symbols
    { os_epoch = epoch; os_classes = classes; os_members = members }

(* [handle_frame t frame] answers one complete binary request frame
   (header + payload, exactly as read off the wire) with a complete
   response frame.  Decode failures answer [bad_request] — echoing the
   request id when the [i64 id | string session] prefix survived —
   never an exception; the length prefix already bounded the read, so a
   bad payload cannot desynchronize the connection. *)
let handle_frame ?conn t frame =
  let t_decode = Telemetry.Clock.now_ns () in
  let decoded =
    match Frame.parse_header frame with
    | Error msg -> Error (0, P.Parse_error, msg)
    | Ok (op, len) ->
      if String.length frame <> Frame.header_len + len then
        Error (0, P.Parse_error, "frame length disagrees with header")
      else
        let body = String.sub frame Frame.header_len len in
        (match Frame.decode_request ~op body with
        | Ok rq -> Ok rq
        | Error msg ->
          let id =
            match Frame.session_of_request body with
            | Ok (id, _) -> id
            | Error _ -> 0
          in
          Error (id, P.Bad_request, msg))
  in
  Telemetry.Histogram.record t.frame_decode_ns
    (Telemetry.Clock.elapsed_ns ~since:t_decode);
  match decoded with
  | Error (id, code, msg) ->
    Telemetry.Counter.incr t.requests;
    Telemetry.Counter.incr t.errors;
    let out = Frame.encode_response ~id (Frame.Err (code, msg)) in
    observe ?conn ~frame_bytes:(String.length out) t ~verb:"invalid"
      ~session:None ~id:(J.Int id)
      ~t0:(Telemetry.Clock.now_ns ())
      ~outcome:(P.code_string code) (J.Obj []);
    out
  | Ok rq ->
    Telemetry.Counter.incr t.requests;
    let verb = Frame.op_string rq.Frame.fr_op in
    let inflight = List.assoc_opt verb t.inflight in
    Option.iter Atomic.incr inflight;
    let t0 = Telemetry.Clock.now_ns () in
    let via = ref None in
    let run () =
      if t.role = Follower && not (Frame.read_only rq.Frame.fr_op) then
        fail P.Not_leader
          "this node is a read-only replica; send %S to the leader" verb;
      let s = session t (Some rq.Frame.fr_session) in
      match rq.Frame.fr_op with
      | Frame.Lookup { lk_class; lk_member } ->
        frame_lookup t s ~cls:lk_class ~member:lk_member via
      | Frame.Batch_lookup pairs -> frame_batch t s pairs
      | Frame.Add_member { am_class; am_member } ->
        frame_add_member t s ~cls:am_class am_member
      | Frame.Add_class { ac_name; ac_bases; ac_members } ->
        frame_add_class t s ~name:ac_name ~bases:ac_bases
          ~members:ac_members
      | Frame.Symbols -> frame_symbols s
    in
    let outcome, internal, resp =
      match run () with
      | r -> ("ok", false, r)
      | exception Reply_error (code, msg) ->
        Telemetry.Counter.incr t.errors;
        (P.code_string code, false, Frame.Err (code, msg))
      | exception exn ->
        Telemetry.Counter.incr t.errors;
        ( P.code_string P.Internal,
          true,
          Frame.Err (P.Internal, Printexc.to_string exn) )
    in
    Option.iter Atomic.decr inflight;
    let out = Frame.encode_response ~id:rq.Frame.fr_id resp in
    observe ?conn ~frame_bytes:(String.length out) ?via:!via t ~verb
      ~session:(Some rq.Frame.fr_session) ~id:(J.Int rq.Frame.fr_id) ~t0
      ~outcome (J.Obj []);
    if internal then dump_flight t stderr;
    out

(* ---- replication entry points --------------------------------------

   The follower's applier mutates sessions through here, not through
   [handle_request]: the [not_leader] gate is for clients, while these
   mirror the leader's stream.  Both re-persist into the follower's own
   store (when configured) so a restarted replica recovers locally and
   resumes from its last applied epoch instead of re-bootstrapping. *)

let open_sessions t =
  Hashtbl.fold
    (fun name s acc -> (name, Session.epoch s) :: acc)
    t.sessions []
  |> List.sort compare

(* Install a full snapshot, superseding whatever the name held: the
   stream's resynchronization point (bootstrap, post-compaction gap, or
   a fresh lineage under a reused name). *)
let install_snapshot t (snap : Store.Snapshot.t) =
  let name = snap.Store.Snapshot.s_session in
  match
    Session.restore ~config:t.config ~name
      ~epoch:snap.Store.Snapshot.s_epoch
      ~columns:snap.Store.Snapshot.s_columns snap.Store.Snapshot.s_graph
  with
  | exception exn -> Error (Printexc.to_string exn)
  | s ->
    (match t.store with
    | None -> ()
    | Some store ->
      Store.reset_session store name;
      ignore (write_snapshot store s));
    if not (Hashtbl.mem t.sessions name) then
      Telemetry.Counter.incr t.sessions_opened;
    if not (List.mem name t.session_order) then
      t.session_order <- t.session_order @ [ name ];
    Hashtbl.replace t.sessions name s;
    Session.register s t.registry;
    Ok ()

(* Apply one replicated WAL record.  The epoch must extend the session
   exactly — same strictly-consecutive contract recovery enforces — or
   the caller must resynchronize from a snapshot. *)
let apply_replicated t ~session:name ~epoch (m : Store.Mutation.t) =
  match Hashtbl.find_opt t.sessions name with
  | None -> Error (Printf.sprintf "no session %S to apply epoch %d to" name epoch)
  | Some s ->
    if epoch <> Session.epoch s + 1 then
      Error
        (Printf.sprintf "session %S: epoch gap (at %d, record %d)" name
           (Session.epoch s) epoch)
    else begin
      match
        (match m with
        | Store.Mutation.Add_class { ac_name; ac_bases; ac_members } ->
          ignore
            (Session.add_class s ~cls:ac_name ~bases:ac_bases
               ~members:ac_members)
        | Store.Mutation.Add_member { am_class; am_member } ->
          ignore (Session.add_member s ~cls:am_class am_member))
      with
      | exception G.Error e -> Error (G.error_to_string e)
      | () ->
        Telemetry.Counter.incr t.mutations;
        (match t.store with
        | None -> ()
        | Some store ->
          Store.log_mutation store ~session:name ~epoch m;
          if Store.needs_compaction store ~session:name then begin
            Store.note_compaction store;
            ignore (write_snapshot store s)
          end);
        Ok ()
    end

(* ---- startup recovery ---------------------------------------------- *)

type recovered =
  | Recovered of {
      r_session : string;
      r_epoch : int;
      r_replayed : int;
      r_torn : bool;
    }
  | Recovery_failed of { r_session : string; r_error : string }

let recover_sessions t =
  match t.store with
  | None -> []
  | Some store ->
    List.filter_map
      (fun name ->
        if Hashtbl.mem t.sessions name then None
        else
          match Store.recover store name with
          | Ok None -> None
          | Error msg ->
            Some (Recovery_failed { r_session = name; r_error = msg })
          | Ok (Some rv) ->
            (match session_of_recovery t name rv with
            | s ->
              register_session t s;
              Some
                (Recovered
                   { r_session = name;
                     r_epoch = Session.epoch s;
                     r_replayed = List.length rv.Store.rv_replayed;
                     r_torn = rv.Store.rv_torn })
            | exception G.Error e ->
              Some
                (Recovery_failed
                   { r_session = name; r_error = G.error_to_string e })))
      (Store.sessions store)

let serve ?(after_response = fun () -> ()) t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      if String.trim line = "" then loop ()
      else begin
        output_string oc (J.to_string (handle_line t line));
        output_char oc '\n';
        flush oc;
        after_response ();
        loop ()
      end
  in
  loop ()
