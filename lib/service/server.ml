module J = Chg.Json
module G = Chg.Graph
module P = Protocol

type t = {
  config : Session.config;
  sessions : (string, Session.t) Hashtbl.t;
  mutable session_order : string list;  (* open order, for stats *)
  mutable next_session : int;
  sink : Telemetry.Sink.t;
  spans : Telemetry.Span.t;
  requests : Telemetry.Counter.t;
  errors : Telemetry.Counter.t;
  sessions_opened : Telemetry.Counter.t;
  sessions_closed : Telemetry.Counter.t;
  lookups : Telemetry.Counter.t;
  batch_requests : Telemetry.Counter.t;
  batch_queries : Telemetry.Counter.t;
  mutations : Telemetry.Counter.t;
}

let create ?(config = Session.default_config) ?(trace = false) () =
  let sink =
    if trace then Telemetry.Sink.create () else Telemetry.Sink.null
  in
  { config;
    sessions = Hashtbl.create 8;
    session_order = [];
    next_session = 0;
    sink;
    spans = Telemetry.Span.make sink;
    requests = Telemetry.Counter.make "requests";
    errors = Telemetry.Counter.make "errors";
    sessions_opened = Telemetry.Counter.make "sessions_opened";
    sessions_closed = Telemetry.Counter.make "sessions_closed";
    lookups = Telemetry.Counter.make "lookups";
    batch_requests = Telemetry.Counter.make "batch_requests";
    batch_queries = Telemetry.Counter.make "batch_queries";
    mutations = Telemetry.Counter.make "mutations" }

let sink t = t.sink

let counters t =
  List.map
    (fun c -> (Telemetry.Counter.name c, Telemetry.Counter.value c))
    [ t.requests; t.errors; t.sessions_opened; t.sessions_closed;
      t.lookups; t.batch_requests; t.batch_queries; t.mutations ]

(* ---- per-verb handlers --------------------------------------------- *)

exception Reply_error of P.error_code * string

let fail code fmt = Printf.ksprintf (fun msg -> raise (Reply_error (code, msg))) fmt

let session t = function
  | None -> fail P.Bad_request "missing field \"session\""
  | Some name ->
    (match Hashtbl.find_opt t.sessions name with
    | Some s -> s
    | None -> fail P.Unknown_session "no open session %S" name)

let graph_of_hierarchy = function
  | P.Chg_json j ->
    (match Chg.Serialize.of_json j with
    | Ok g -> g
    | Error msg -> fail P.Bad_hierarchy "%s" msg)
  | P.Source src ->
    let r = Frontend.Sema.analyze_source src in
    if not (Frontend.Sema.ok r) then
      fail P.Bad_hierarchy "source has errors: %s"
        (match r.Frontend.Sema.diagnostics with
        | d :: _ -> Frontend.Diagnostic.to_string d
        | [] -> "unknown");
    r.Frontend.Sema.graph

let handle_open t ~session:requested hierarchy =
  let name =
    match requested with
    | Some n ->
      if Hashtbl.mem t.sessions n then
        fail P.Duplicate_session "session %S is already open" n;
      n
    | None ->
      let rec pick () =
        let n = Printf.sprintf "s%d" t.next_session in
        t.next_session <- t.next_session + 1;
        if Hashtbl.mem t.sessions n then pick () else n
      in
      pick ()
  in
  let g = graph_of_hierarchy hierarchy in
  let s = Session.create ~config:t.config ~name g in
  Hashtbl.add t.sessions name s;
  t.session_order <- t.session_order @ [ name ];
  Telemetry.Counter.incr t.sessions_opened;
  [ ("protocol", J.String P.version);
    ("session", J.String name);
    ("classes", J.Int (G.num_classes g));
    ("edges", J.Int (G.num_edges g));
    ("members", J.Int (List.length (G.member_names g))) ]

let query_fields s (q : P.query) =
  match Session.lookup s q.P.q_class q.P.q_member with
  | Error cls -> fail P.Unknown_class "unknown class %S" cls
  | Ok (v, served) ->
    ("class", J.String q.P.q_class)
    :: ("member", J.String q.P.q_member)
    :: P.verdict_fields (Session.graph s) v
    @ [ ("via", J.String (Session.served_string served)) ]

let handle_lookup t s q =
  Telemetry.Counter.incr t.lookups;
  query_fields s q

let handle_batch t s qs =
  Telemetry.Counter.incr t.batch_requests;
  Telemetry.Counter.add t.batch_queries (List.length qs);
  let resolved = ref 0 and ambiguous = ref 0 and not_found = ref 0 in
  let results =
    List.map
      (fun (q : P.query) ->
        match Session.lookup s q.P.q_class q.P.q_member with
        | Error cls ->
          J.Obj
            [ ("class", J.String q.P.q_class);
              ("member", J.String q.P.q_member);
              ("error", J.String "unknown_class");
              ("message", J.String (Printf.sprintf "unknown class %S" cls))
            ]
        | Ok (v, served) ->
          (match v with
          | Some (Lookup_core.Engine.Red _) -> incr resolved
          | Some (Lookup_core.Engine.Blue _) -> incr ambiguous
          | None -> incr not_found);
          J.Obj
            (("class", J.String q.P.q_class)
             :: ("member", J.String q.P.q_member)
             :: P.verdict_fields (Session.graph s) v
             @ [ ("via", J.String (Session.served_string served)) ]))
      qs
  in
  [ ("results", J.List results);
    ("resolved", J.Int !resolved);
    ("ambiguous", J.Int !ambiguous);
    ("not_found", J.Int !not_found) ]

let handle_mutate t s = function
  | P.Add_class { mc_name; mc_bases; mc_members } ->
    Telemetry.Counter.incr t.mutations;
    (try
       ignore (Session.add_class s ~cls:mc_name ~bases:mc_bases
                 ~members:mc_members);
       [ ("session", J.String (Session.name s));
         ("added", J.String mc_name);
         ("classes", J.Int (G.num_classes (Session.graph s)));
         ("epoch", J.Int (Session.epoch s)) ]
     with G.Error e ->
       let code =
         match e with
         | G.Unknown_class _ | G.Unknown_base _ -> P.Unknown_class
         | _ -> P.Bad_hierarchy
       in
       fail code "%s" (G.error_to_string e))
  | P.Add_member { mm_class; mm_member } ->
    Telemetry.Counter.incr t.mutations;
    (try
       let rows, invalidated = Session.add_member s ~cls:mm_class mm_member in
       [ ("session", J.String (Session.name s));
         ("class", J.String mm_class);
         ("member", J.String mm_member.G.m_name);
         ("rows_recomputed", J.Int rows);
         ("table_invalidated", J.Bool invalidated);
         ("epoch", J.Int (Session.epoch s)) ]
     with G.Error e ->
       let code =
         match e with
         | G.Unknown_class _ -> P.Unknown_class
         | _ -> P.Bad_hierarchy
       in
       fail code "%s" (G.error_to_string e))

let handle_stats t = function
  | Some _ as sess ->
    let s = session t sess in
    [ ("session", J.String (Session.name s));
      ("stats", Session.stats_json s) ]
  | None ->
    let open_sessions =
      List.filter (fun n -> Hashtbl.mem t.sessions n) t.session_order
    in
    [ ("protocol", J.String P.version);
      ( "service",
        J.Obj
          (List.map (fun (k, v) -> (k, J.Int v)) (counters t)
           @ [ ("sessions_open", J.Int (Hashtbl.length t.sessions)) ]) );
      ( "sessions",
        J.List
          (List.map
             (fun n -> Session.stats_json (Hashtbl.find t.sessions n))
             open_sessions) ) ]

let handle_close t s =
  let name = Session.name s in
  Hashtbl.remove t.sessions name;
  Telemetry.Counter.incr t.sessions_closed;
  [ ("session", J.String name); ("closed", J.Bool true) ]

let op_name = function
  | P.Open _ -> "open"
  | P.Lookup _ -> "lookup"
  | P.Batch_lookup _ -> "batch_lookup"
  | P.Mutate _ -> "mutate"
  | P.Stats -> "stats"
  | P.Close -> "close"

let handle_request t (rq : P.request) =
  Telemetry.Counter.incr t.requests;
  let run () =
    match rq.P.rq_op with
    | P.Open { o_session; o_hierarchy } ->
      handle_open t ~session:o_session o_hierarchy
    | P.Lookup q -> handle_lookup t (session t rq.P.rq_session) q
    | P.Batch_lookup qs -> handle_batch t (session t rq.P.rq_session) qs
    | P.Mutate m -> handle_mutate t (session t rq.P.rq_session) m
    | P.Stats -> handle_stats t rq.P.rq_session
    | P.Close -> handle_close t (session t rq.P.rq_session)
  in
  let run () =
    if Telemetry.Sink.enabled t.sink then begin
      Telemetry.Sink.emit t.sink "request"
        (("op", Telemetry.Event.Str (op_name rq.P.rq_op))
         ::
         (match rq.P.rq_session with
         | Some s -> [ ("session", Telemetry.Event.Str s) ]
         | None -> []));
      Telemetry.Span.run t.spans ("rpc:" ^ op_name rq.P.rq_op) run
    end
    else run ()
  in
  match run () with
  | fields -> P.ok_response ~id:rq.P.rq_id fields
  | exception Reply_error (code, msg) ->
    Telemetry.Counter.incr t.errors;
    P.error_response ~id:rq.P.rq_id code msg

let handle_json t j =
  match P.request_of_json j with
  | Ok rq -> handle_request t rq
  | Error (id, code, msg) ->
    Telemetry.Counter.incr t.requests;
    Telemetry.Counter.incr t.errors;
    P.error_response ~id code msg

let handle_line t line =
  match P.parse_request line with
  | Ok rq -> handle_request t rq
  | Error (id, code, msg) ->
    Telemetry.Counter.incr t.requests;
    Telemetry.Counter.incr t.errors;
    P.error_response ~id code msg

let serve t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      if String.trim line = "" then loop ()
      else begin
        output_string oc (J.to_string (handle_line t line));
        output_char oc '\n';
        flush oc;
        loop ()
      end
  in
  loop ()
