(** Linearized member-lookup semantics (method resolution order) over the
    same class hierarchy graph the Figure-8 engine consumes.

    The paper answers "which declaration does [C::m] denote?" with
    subobject-graph dominance; Python, Dylan and CLOS answer the same
    question by {e linearizing} the superclass DAG into a total order and
    taking the first declaring class.  This module implements the three
    documented linearizations over {!Chg.Graph}:

    - {b C3} (Barrett et al., as described by Hivert & Thiéry,
      "Controlling the C3 super class linearization algorithm"):
      [L(C) = C :: merge(L(B1), ..., L(Bn), [B1..Bn])], where [merge]
      repeatedly takes the leftmost head that appears in no tail.  C3 can
      {e fail} — the precedence constraints may be cyclic — and this
      implementation returns the offending constraint cycle as a witness.
    - {b Python 2.2} ([L*]): leftmost depth-first concatenation of the
      base linearizations with duplicates removed keeping the {e last}
      occurrence.  Total (never fails), but neither monotone nor
      local-precedence-preserving — the defects that motivated C3.
    - {b Dylan} (CLOS-flavoured merge): same validity condition as C3,
      but among valid heads it prefers the candidate with a direct
      subclass rightmost in the partial result, falling back to leftmost
      list order.  Fails exactly when no valid head exists.

    Lookups under a linearized semantics conform to the Figure-8 verdict
    shape ({!Lookup_core.Engine.verdict}) so the memo / packed /
    telemetry layers can host an MRO table unchanged: a resolved lookup
    is [Red { r_ldc; r_lvs = [Omega] }] (linearized semantics never
    consult virtual-path abstractions, so [leastVirtual] is fixed at Ω),
    and a lookup on a class whose linearization {e failed} is [Blue]
    of the stuck constraint-cycle classes — the static-analysis analogue
    of Python raising [TypeError] at class-creation time. *)

type variant = C3 | Py22 | Dylan

(** Wire / CLI spelling: ["c3"], ["py22"], ["dylan"]. *)
val variant_string : variant -> string

val variant_of_string : string -> variant option

(** All variants, in {!variant_string} order — for cross-variant lints. *)
val variants : variant list

(** A lookup semantics as selected on the wire and the CLI: the paper's
    C++ dominance (the default everywhere), or one of the linearized
    variants.  Spelled ["cpp"], ["c3"], ["py22"], ["dylan"]. *)
type semantics = Cpp | Linearized of variant

val semantics_string : semantics -> string
val semantics_of_string : string -> semantics option

(** A linearization failure: the merge for [fl_class] got stuck, and
    [fl_cycle] is a cycle of classes [c0 -> c1 -> ... -> c0] where each
    [ci] is required to precede [c_(i+1)] by one input list and to follow
    it by another (length >= 2).  A class whose {e base} already failed
    inherits the base's failure record, so [fl_class] names the
    originating class of the cycle. *)
type failure = { fl_class : Chg.Graph.class_id; fl_cycle : Chg.Graph.class_id list }

(** All linearizations of one graph under one variant, computed eagerly
    in one pass over the classes in topological order (bases first). *)
type t

val compute : variant -> Chg.Graph.t -> t

val variant : t -> variant
val graph : t -> Chg.Graph.t

(** [linearization t c] is the method resolution order of [c] — [c]
    first, every strict base exactly once — or the failure witness.
    Under [Py22] the result is always [Ok]. *)
val linearization : t -> Chg.Graph.class_id -> (Chg.Graph.class_id list, failure) result

(** [lookup t c m] resolves member [m] in class [c] by MRO order: the
    first class in [linearization t c] declaring [m] wins, as
    [Red { r_ldc; r_lvs = [Omega] }].  When [c]'s linearization failed
    the verdict is [Blue] of the stuck-cycle classes (sorted, deduped).
    [None] when no class among [c] and its bases declares [m] — absence
    agrees with the Figure-8 engine regardless of variant or failure. *)
val lookup :
  t -> Chg.Graph.class_id -> string -> Lookup_core.Engine.verdict option

(** [resolves_to t c m] is the declaring class of a resolved lookup. *)
val resolves_to :
  t -> Chg.Graph.class_id -> string -> Chg.Graph.class_id option

(** [engine cl v] tabulates the [v]-semantics lookup for every member
    name of the program as a first-class {!Lookup_core.Engine.t} (via
    [Engine.of_columns]), interchangeable with a Figure-8 build for the
    packed / memo / telemetry layers.  Witness paths are not
    representable (like any column-rebuilt engine). *)
val engine : Chg.Closure.t -> variant -> Lookup_core.Engine.t

(** [pp_linearization g ppf c] prints [linearization] results as
    [C -> B -> A] chains or a [no C3 linearization (cycle: ...)] line. *)
val pp_result :
  Chg.Graph.t ->
  Format.formatter ->
  (Chg.Graph.class_id list, failure) result ->
  unit
