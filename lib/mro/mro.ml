(* Linearized (MRO) member-lookup semantics over the CHG.  See mro.mli
   for the contract; the merge below is the C3 of Hivert & Thiéry with a
   constraint-cycle witness extracted whenever it gets stuck. *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Abs = Lookup_core.Abstraction

type variant = C3 | Py22 | Dylan

let variant_string = function C3 -> "c3" | Py22 -> "py22" | Dylan -> "dylan"

let variant_of_string = function
  | "c3" -> Some C3
  | "py22" -> Some Py22
  | "dylan" -> Some Dylan
  | _ -> None

let variants = [ C3; Py22; Dylan ]

type semantics = Cpp | Linearized of variant

let semantics_string = function
  | Cpp -> "cpp"
  | Linearized v -> variant_string v

let semantics_of_string = function
  | "cpp" -> Some Cpp
  | s -> Option.map (fun v -> Linearized v) (variant_of_string s)

type failure = { fl_class : G.class_id; fl_cycle : G.class_id list }

type t = {
  mro_variant : variant;
  mro_graph : G.t;
  mro_lin : (G.class_id list, failure) result array;  (* by class id *)
}

(* [blocked h lists] — h appears in the tail of some input list, i.e.
   some list demands another class precede h. *)
let blocked h lists =
  List.exists
    (function [] -> false | _ :: tl -> List.mem h tl)
    lists

(* When the merge is stuck every head is blocked: each head [h] has a
   blocker — the head of a list whose tail contains [h], which the list
   demands precede [h].  Following blockers from any head must revisit a
   class (the head set is finite), and the revisited segment is a cycle
   of precedence constraints: the failure witness. *)
let stuck_cycle lists =
  let blocker h =
    List.find_map
      (function
        | [] -> None
        | h' :: tl -> if List.mem h tl then Some h' else None)
      lists
  in
  let first_head =
    match List.find_map (function [] -> None | h :: _ -> Some h) lists with
    | Some h -> h
    | None -> invalid_arg "stuck_cycle: no non-empty list"
  in
  (* [path] is most-recent-first; cut it at the revisited class to get
     the cycle in constraint order (each element's blocker follows it). *)
  let rec follow path h =
    if List.mem h path then
      let rec cut acc = function
        | [] -> acc
        | x :: rest -> if x = h then x :: acc else cut (x :: acc) rest
      in
      cut [] path
    else
      match blocker h with
      | Some b -> follow (h :: path) b
      | None -> invalid_arg "stuck_cycle: unblocked head"
  in
  follow [] first_head

let rec dedup seen = function
  | [] -> []
  | x :: rest ->
      if List.mem x seen then dedup seen rest
      else x :: dedup (x :: seen) rest

(* Dylan / CLOS tie-break: among valid heads prefer the candidate with a
   direct subclass closest to the end of the partial result ([acc] is
   most-recent-first, so smallest index wins); leftmost list order breaks
   remaining ties.  C3 always takes the leftmost valid head. *)
let dylan_pick g acc candidates =
  let score h =
    let is_direct_base d =
      List.exists (fun b -> b.G.b_class = h) (G.bases g d)
    in
    let rec idx i = function
      | [] -> max_int
      | d :: rest -> if is_direct_base d then i else idx (i + 1) rest
    in
    idx 0 acc
  in
  match candidates with
  | [] -> invalid_arg "dylan_pick: no candidate"
  | c0 :: rest ->
      fst
        (List.fold_left
           (fun (best, best_score) h ->
             let s = score h in
             if s < best_score then (h, s) else (best, best_score))
           (c0, score c0) rest)

let merge variant g ~head lists =
  let rec go acc lists =
    let lists = List.filter (fun l -> l <> []) lists in
    if lists = [] then Ok (List.rev acc)
    else
      let candidates =
        dedup []
          (List.filter_map
             (function
               | [] -> None
               | h :: _ -> if blocked h lists then None else Some h)
             lists)
      in
      match candidates with
      | [] -> Error (stuck_cycle lists)
      | c0 :: _ ->
          let chosen =
            match variant with
            | Dylan -> dylan_pick g acc candidates
            | C3 | Py22 -> c0
          in
          let lists =
            List.map
              (function h :: tl when h = chosen -> tl | l -> l)
              lists
          in
          go (chosen :: acc) lists
  in
  go [ head ] lists

(* Python 2.2's L*: leftmost depth-first concatenation with duplicates
   removed keeping the LAST occurrence.  Total, but neither monotone nor
   local-precedence-preserving — the documented defects C3 fixed. *)
let py22 lin_of c bases =
  let raw = c :: List.concat_map lin_of bases in
  let rec keep_last = function
    | [] -> []
    | x :: rest -> if List.mem x rest then keep_last rest else x :: keep_last rest
  in
  keep_last raw

let compute variant g =
  let n = G.num_classes g in
  let lin = Array.make n (Ok []) in
  for c = 0 to n - 1 do
    let bases = List.map (fun b -> b.G.b_class) (G.bases g c) in
    let r =
      match variant with
      | Py22 ->
          let lin_of b =
            match lin.(b) with Ok l -> l | Error _ -> assert false
          in
          Ok (py22 lin_of c bases)
      | C3 | Dylan -> (
          (* A failed base poisons every derived class; keep the
             originating witness rather than re-deriving a cycle. *)
          match
            List.find_map
              (fun b ->
                match lin.(b) with Error f -> Some f | Ok _ -> None)
              bases
          with
          | Some f -> Error f
          | None -> (
              let base_lins =
                List.map
                  (fun b ->
                    match lin.(b) with Ok l -> l | Error _ -> assert false)
                  bases
              in
              match merge variant g ~head:c (base_lins @ [ bases ]) with
              | Ok l -> Ok l
              | Error cycle -> Error { fl_class = c; fl_cycle = cycle }))
    in
    lin.(c) <- r
  done;
  { mro_variant = variant; mro_graph = g; mro_lin = lin }

let variant t = t.mro_variant
let graph t = t.mro_graph
let linearization t c = t.mro_lin.(c)

(* Containment irrespective of linearization success — used so absence
   ([None]) agrees with the Figure-8 engine even on unsolvable classes. *)
let contains g c m =
  let seen = Hashtbl.create 16 in
  let rec go c =
    if Hashtbl.mem seen c then false
    else begin
      Hashtbl.add seen c ();
      G.declares g c m
      || List.exists (fun b -> go b.G.b_class) (G.bases g c)
    end
  in
  go c

let lookup t c m =
  let g = t.mro_graph in
  match t.mro_lin.(c) with
  | Ok lin -> (
      match List.find_opt (fun l -> G.declares g l m) lin with
      | Some l -> Some (Engine.Red { Abs.r_ldc = l; r_lvs = [ Abs.Omega ] })
      | None -> None)
  | Error f ->
      if contains g c m then
        let lvs =
          List.sort_uniq Abs.lv_compare
            (List.map (fun x -> Abs.Lv x) f.fl_cycle)
        in
        Some (Engine.Blue lvs)
      else None

let resolves_to t c m =
  match lookup t c m with
  | Some (Engine.Red r) -> Some r.Abs.r_ldc
  | Some (Engine.Blue _) | None -> None

let engine cl v =
  let g = Chg.Closure.graph cl in
  let t = compute v g in
  let names = Array.of_list (G.member_names g) in
  let n = G.num_classes g in
  let columns =
    Array.map (fun m -> Array.init n (fun c -> lookup t c m)) names
  in
  Engine.of_columns cl ~names ~columns

let pp_result g ppf = function
  | Ok lin ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
        (fun ppf c -> Format.pp_print_string ppf (G.name g c))
        ppf lin
  | Error f ->
      let cycle = f.fl_cycle @ [ List.hd f.fl_cycle ] in
      Format.fprintf ppf "no linearization of %s: precedence cycle %a"
        (G.name g f.fl_class)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " < ")
           (fun ppf c -> Format.pp_print_string ppf (G.name g c)))
        cycle
