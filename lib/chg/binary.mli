(** Binary (de)serialization primitives and the graph codec — the
    substrate of the durable store's snapshot and WAL formats.

    All integers are little-endian and fixed-width; strings are
    length-prefixed; there is no padding or alignment, so every encoding
    is a deterministic function of the value.  Integrity is the
    caller's concern: the store frames each payload with a {!crc32}
    checksum and treats {!Corrupt} as "this payload is not trustworthy",
    never as a fatal condition. *)

(** Raised by readers on truncated or malformed input.  The message
    names the field that failed, for diagnostics. *)
exception Corrupt of string

(** {1 CRC-32}

    The IEEE 802.3 polynomial (0xEDB88320, reflected), as used by gzip
    and PNG — [crc32 "123456789" = 0xCBF43926l]. *)

val crc32 : ?crc:int32 -> string -> pos:int -> len:int -> int32

(** [crc32_string s] checksums all of [s]. *)
val crc32_string : string -> int32

(** {1 Writer} *)

module Writer : sig
  type t

  val create : ?initial_size:int -> unit -> t

  val u8 : t -> int -> unit
  val u32 : t -> int -> unit  (** asserts [0 <= v < 2^32] *)

  val i64 : t -> int -> unit  (** full OCaml int range *)

  val bool : t -> bool -> unit
  val string : t -> string -> unit  (** u32 length prefix + bytes *)

  val raw : t -> string -> unit  (** bytes, no prefix *)

  val length : t -> int
  val contents : t -> string
end

(** {1 Reader} *)

module Reader : sig
  type t

  (** [of_string ?pos ?len s] reads from a slice of [s]. *)
  val of_string : ?pos:int -> ?len:int -> string -> t

  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int
  val bool : t -> bool
  val string : t -> string
  val raw : t -> int -> string

  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
end

(** {1 Graph codec}

    Encodes a frozen {!Graph.t} structurally: classes in id
    (declaration) order, each with its name, direct bases (by id — ids
    are a topological order, so decoding can rebuild through the
    builder) and members.  The encoding has no version field of its own;
    the store's snapshot header versions the whole container. *)

(** [read_list r f] reads a u32 count then that many elements with [f],
    strictly in order (the reader is stateful). *)
val read_list : Reader.t -> (Reader.t -> 'a) -> 'a list

val write_graph : Writer.t -> Graph.t -> unit

(** [read_graph r] rebuilds the graph.
    @raise Corrupt on malformed input (including graph-level errors such
    as an out-of-range base id). *)
val read_graph : Reader.t -> Graph.t

(** Member codec, shared with the WAL's mutation records. *)

val write_member : Writer.t -> Graph.member -> unit
val read_member : Reader.t -> Graph.member

val write_edge_kind : Writer.t -> Graph.edge_kind -> unit
val read_edge_kind : Reader.t -> Graph.edge_kind
val write_access : Writer.t -> Graph.access -> unit
val read_access : Reader.t -> Graph.access
