(** The Class Hierarchy Graph (CHG) of Ramalingam & Srinivasan (PLDI 1997,
    Section 2).

    Nodes denote classes; edges denote direct inheritance relations and are
    tagged virtual or non-virtual.  An edge [X -> Y] means [X] is a direct
    base class of [Y]; a class [X] is a {e base} of [Y] iff there is a
    non-empty path from [X] to [Y].

    Classes are identified by dense integer ids assigned in declaration
    order; since C++ requires a base class to be complete before it is
    inherited from, declaration order is a topological order of the CHG and
    the builder enforces this, which also guarantees acyclicity. *)

(** Kind of an inheritance edge ([class D : virtual B] vs [class D : B]). *)
type edge_kind = Virtual | Non_virtual

(** C++ access level, for members and for inheritance edges. *)
type access = Public | Protected | Private

(** Kind of a class member.  The lookup algorithm itself does not
    distinguish data from functions, but the layout/vtable substrate and
    the static-member extension (paper Section 6) do.  [Type] covers
    nested type names (typedefs, nested classes as names) and
    [Enumerator] enumeration constants — the paper: "it is also possible
    to introduce new type names and enumeration constants into the scope
    of a class.  For purposes of member lookup, these are treated exactly
    like static members." *)
type member_kind = Data | Function | Type | Enumerator

type member = {
  m_name : string;
  m_kind : member_kind;
  m_static : bool;  (** static members relax the ambiguity rule (Defn. 17) *)
  m_virtual : bool;  (** virtual member function (used by vtable building) *)
  m_access : access;
}

(** [member_is_static_like m] — [m] participates in Definition 17's
    relaxed ambiguity rule: declared [static], a nested type name, or an
    enumeration constant. *)
val member_is_static_like : member -> bool

(** A direct inheritance edge as seen from the derived class. *)
type base = { b_class : int; b_kind : edge_kind; b_access : access }

type t

(** Identifier of a class within its graph, in [0 .. num_classes - 1]. *)
type class_id = int

(** {1 Construction} *)

type error =
  | Duplicate_class of string
  | Unknown_class of string  (** mutation target does not exist *)
  | Unknown_base of { cls : string; base : string }
  | Duplicate_base of { cls : string; base : string }
  | Duplicate_member of { cls : string; member : string }
  | Cyclic_hierarchy of string list  (** a cycle, as class names *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Error of error

(** Mutable builder.  Classes must be added bases-first, mirroring the C++
    requirement that a base class be complete at its point of use. *)
type builder

val create_builder : unit -> builder

(** [add_class b name ~bases ~members] declares a class.  [bases] are
    (name, kind, access) triples of previously declared classes, in
    declaration order (the order matters for subobject-graph traversal
    order, e.g. to reproduce the g++ counterexample).
    @raise Error on duplicate class, unknown or duplicate base, or
    duplicate member name within the class. *)
val add_class :
  builder ->
  string ->
  bases:(string * edge_kind * access) list ->
  members:member list ->
  class_id

(** [add_member b cls m] adds member [m] to the already-declared class
    [cls] — the mutation a resident service applies when a declaration is
    appended to an existing class body.  Ids and declaration order are
    unchanged; only snapshots frozen afterwards see the member.
    @raise Error on unknown class or duplicate member name. *)
val add_member : builder -> string -> member -> unit

(** [freeze b] produces the immutable graph.  The builder may keep being
    extended afterwards; frozen graphs are snapshots. *)
val freeze : builder -> t

(** A declaration, for order-independent construction. *)
type decl = {
  d_name : string;
  d_bases : (string * edge_kind * access) list;
  d_members : member list;
}

(** [of_decls decls] topologically sorts the declarations (so forward
    references are allowed) and builds the graph.  Reports
    [Cyclic_hierarchy] when the inheritance relation has a cycle. *)
val of_decls : decl list -> (t, error) result

(** Convenience: a plain member with defaults
    ([Data], non-static, non-virtual, [Public]). *)
val member : ?kind:member_kind -> ?static:bool -> ?virtual_:bool ->
  ?access:access -> string -> member

(** {1 Accessors} *)

val num_classes : t -> int
val num_edges : t -> int

(** [name g c] is the class name of id [c]. *)
val name : t -> class_id -> string

(** [find g name] is the id of class [name].
    @raise Not_found if absent. *)
val find : t -> string -> class_id

val find_opt : t -> string -> class_id option

(** [bases g c] are the direct bases of [c] in declaration order. *)
val bases : t -> class_id -> base list

(** [derived g c] are the classes having [c] as direct base, with the
    edge kind, in declaration order of the derived classes. *)
val derived : t -> class_id -> (class_id * edge_kind) list

(** [members g c] are the members declared directly in [c] — the set
    [M[c]] of the paper. *)
val members : t -> class_id -> member list

(** [find_member g c m] is the declaration of member [m] directly in
    class [c], if any. *)
val find_member : t -> class_id -> string -> member option

(** [declares g c m] is [true] iff [m ∈ M[c]]. *)
val declares : t -> class_id -> string -> bool

(** [member_names g] is the set of all member names declared anywhere in
    the program, without duplicates, in first-declaration order — the set
    whose size is |M| in the paper's complexity bounds. *)
val member_names : t -> string list

(** [classes g] is the list of ids [0 .. num_classes-1] (a topological
    order: bases before derived). *)
val classes : t -> class_id list

val iter_classes : t -> (class_id -> unit) -> unit

(** [pp g] prints a human-readable summary of the hierarchy. *)
val pp : Format.formatter -> t -> unit
