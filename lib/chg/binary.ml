exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ---- CRC-32 (IEEE 802.3, reflected 0xEDB88320) --------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Binary.crc32";
  let table = Lazy.force crc_table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xffl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let crc32_string s = crc32 s ~pos:0 ~len:(String.length s)

(* ---- Writer -------------------------------------------------------- *)

module Writer = struct
  type t = Buffer.t

  let create ?(initial_size = 256) () = Buffer.create initial_size
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    if v < 0 || v > 0xffffffff then invalid_arg "Binary.Writer.u32";
    Buffer.add_char b (Char.chr (v land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

  let i64 b v =
    let v = Int64.of_int v in
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
    done

  let bool b v = u8 b (if v then 1 else 0)

  let string b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s
  let length = Buffer.length
  let contents = Buffer.contents
end

(* ---- Reader -------------------------------------------------------- *)

module Reader = struct
  type t = { src : string; limit : int; mutable pos : int }

  let of_string ?(pos = 0) ?len s =
    let limit =
      match len with Some l -> pos + l | None -> String.length s
    in
    if pos < 0 || limit > String.length s || pos > limit then
      invalid_arg "Binary.Reader.of_string";
    { src = s; limit; pos }

  let need r n what =
    if r.limit - r.pos < n then
      corrupt "truncated input: need %d bytes for %s at offset %d" n what r.pos

  let u8 r =
    need r 1 "u8";
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    need r 4 "u32";
    let b i = Char.code r.src.[r.pos + i] in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8 "i64";
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (Char.code r.src.[r.pos + i]))
    done;
    r.pos <- r.pos + 8;
    Int64.to_int !v

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | n -> corrupt "bad boolean byte %d" n

  let raw r n =
    need r n "raw bytes";
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let string r =
    let n = u32 r in
    need r n "string body";
    raw r n

  let pos r = r.pos
  let remaining r = r.limit - r.pos
  let at_end r = r.pos = r.limit
end

(* ---- Graph codec --------------------------------------------------- *)

let write_edge_kind w = function
  | Graph.Virtual -> Writer.u8 w 1
  | Graph.Non_virtual -> Writer.u8 w 0

let read_edge_kind r =
  match Reader.u8 r with
  | 0 -> Graph.Non_virtual
  | 1 -> Graph.Virtual
  | n -> corrupt "bad edge kind %d" n

let write_access w = function
  | Graph.Public -> Writer.u8 w 0
  | Graph.Protected -> Writer.u8 w 1
  | Graph.Private -> Writer.u8 w 2

let read_access r =
  match Reader.u8 r with
  | 0 -> Graph.Public
  | 1 -> Graph.Protected
  | 2 -> Graph.Private
  | n -> corrupt "bad access %d" n

let write_member_kind w = function
  | Graph.Data -> Writer.u8 w 0
  | Graph.Function -> Writer.u8 w 1
  | Graph.Type -> Writer.u8 w 2
  | Graph.Enumerator -> Writer.u8 w 3

let read_member_kind r =
  match Reader.u8 r with
  | 0 -> Graph.Data
  | 1 -> Graph.Function
  | 2 -> Graph.Type
  | 3 -> Graph.Enumerator
  | n -> corrupt "bad member kind %d" n

let write_member w (m : Graph.member) =
  Writer.string w m.Graph.m_name;
  write_member_kind w m.Graph.m_kind;
  Writer.bool w m.Graph.m_static;
  Writer.bool w m.Graph.m_virtual;
  write_access w m.Graph.m_access

let read_member r =
  let m_name = Reader.string r in
  let m_kind = read_member_kind r in
  let m_static = Reader.bool r in
  let m_virtual = Reader.bool r in
  let m_access = read_access r in
  { Graph.m_name; m_kind; m_static; m_virtual; m_access }

let write_graph w g =
  let n = Graph.num_classes g in
  Writer.u32 w n;
  Graph.iter_classes g (fun c ->
      Writer.string w (Graph.name g c);
      let bases = Graph.bases g c in
      Writer.u32 w (List.length bases);
      List.iter
        (fun (b : Graph.base) ->
          Writer.u32 w b.Graph.b_class;
          write_edge_kind w b.Graph.b_kind;
          write_access w b.Graph.b_access)
        bases;
      let members = Graph.members g c in
      Writer.u32 w (List.length members);
      List.iter (write_member w) members)

(* in-order list read: the reader is stateful, so element order matters *)
let read_list r f =
  let n = Reader.u32 r in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f r :: acc) in
  go n []

let read_graph r =
  let n = Reader.u32 r in
  let b = Graph.create_builder () in
  (* ids are assigned densely in declaration order, so a base id must
     refer to an earlier class; names collects them as they appear *)
  let names = Array.make (max n 1) "" in
  (try
     for i = 0 to n - 1 do
       let name = Reader.string r in
       let bases =
         read_list r (fun r ->
             let id = Reader.u32 r in
             if id >= i then corrupt "base id %d of class %d not earlier" id i;
             let kind = read_edge_kind r in
             let access = read_access r in
             (names.(id), kind, access))
       in
       let members = read_list r read_member in
       names.(i) <- name;
       ignore (Graph.add_class b name ~bases ~members)
     done
   with Graph.Error e -> corrupt "graph rejected: %s" (Graph.error_to_string e));
  Graph.freeze b
