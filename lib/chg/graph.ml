type edge_kind = Virtual | Non_virtual
type access = Public | Protected | Private
type member_kind = Data | Function | Type | Enumerator

type member = {
  m_name : string;
  m_kind : member_kind;
  m_static : bool;
  m_virtual : bool;
  m_access : access;
}

let member_is_static_like m =
  m.m_static || (match m.m_kind with
                | Type | Enumerator -> true
                | Data | Function -> false)

type base = { b_class : int; b_kind : edge_kind; b_access : access }
type class_id = int

type t = {
  names : string array;
  ids : (string, int) Hashtbl.t;
  base_edges : base array array;
  derived_edges : (int * edge_kind) list array;  (* reversed adjacency *)
  member_arrays : member array array;
  num_edges : int;
}

type error =
  | Duplicate_class of string
  | Unknown_class of string
  | Unknown_base of { cls : string; base : string }
  | Duplicate_base of { cls : string; base : string }
  | Duplicate_member of { cls : string; member : string }
  | Cyclic_hierarchy of string list

let pp_error ppf = function
  | Duplicate_class c -> Format.fprintf ppf "class %s is declared twice" c
  | Unknown_class c -> Format.fprintf ppf "class %s is not declared" c
  | Unknown_base { cls; base } ->
    Format.fprintf ppf "class %s inherits from undeclared class %s" cls base
  | Duplicate_base { cls; base } ->
    Format.fprintf ppf "class %s lists direct base %s twice" cls base
  | Duplicate_member { cls; member } ->
    Format.fprintf ppf "class %s declares member %s twice" cls member
  | Cyclic_hierarchy cycle ->
    Format.fprintf ppf "inheritance cycle: %s"
      (String.concat " -> " cycle)

let error_to_string e = Format.asprintf "%a" pp_error e

exception Error of error

type class_rec = {
  r_name : string;
  r_bases : base list;
  r_members : member list;
}

type builder = {
  mutable rev_classes : class_rec list;
  b_ids : (string, int) Hashtbl.t;
  mutable count : int;
}

let create_builder () = { rev_classes = []; b_ids = Hashtbl.create 16; count = 0 }

let check_members cls members =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem seen m.m_name then
        raise (Error (Duplicate_member { cls; member = m.m_name }));
      Hashtbl.add seen m.m_name ())
    members

let add_class b name ~bases ~members =
  if Hashtbl.mem b.b_ids name then raise (Error (Duplicate_class name));
  check_members name members;
  let seen_bases = Hashtbl.create 4 in
  let resolve (base_name, kind, acc) =
    match Hashtbl.find_opt b.b_ids base_name with
    | None -> raise (Error (Unknown_base { cls = name; base = base_name }))
    | Some id ->
      if Hashtbl.mem seen_bases base_name then
        raise (Error (Duplicate_base { cls = name; base = base_name }));
      Hashtbl.add seen_bases base_name ();
      { b_class = id; b_kind = kind; b_access = acc }
  in
  let resolved = List.map resolve bases in
  let id = b.count in
  Hashtbl.add b.b_ids name id;
  b.count <- b.count + 1;
  b.rev_classes <-
    { r_name = name; r_bases = resolved; r_members = members } :: b.rev_classes;
  id

let add_member b cls m =
  if not (Hashtbl.mem b.b_ids cls) then raise (Error (Unknown_class cls));
  b.rev_classes <-
    List.map
      (fun r ->
        if String.equal r.r_name cls then begin
          if List.exists (fun m' -> String.equal m'.m_name m.m_name) r.r_members
          then raise (Error (Duplicate_member { cls; member = m.m_name }));
          { r with r_members = r.r_members @ [ m ] }
        end
        else r)
      b.rev_classes

let freeze b =
  let recs = Array.of_list (List.rev b.rev_classes) in
  let n = Array.length recs in
  let names = Array.map (fun r -> r.r_name) recs in
  let ids = Hashtbl.copy b.b_ids in
  let base_edges = Array.map (fun r -> Array.of_list r.r_bases) recs in
  let member_arrays = Array.map (fun r -> Array.of_list r.r_members) recs in
  let derived_edges = Array.make n [] in
  let num_edges = ref 0 in
  (* Walk derived classes in reverse so each adjacency list ends up in
     declaration order of the derived classes. *)
  for c = n - 1 downto 0 do
    Array.iter
      (fun e ->
        incr num_edges;
        derived_edges.(e.b_class) <- (c, e.b_kind) :: derived_edges.(e.b_class))
      base_edges.(c)
  done;
  { names; ids; base_edges; derived_edges; member_arrays; num_edges = !num_edges }

type decl = {
  d_name : string;
  d_bases : (string * edge_kind * access) list;
  d_members : member list;
}

let of_decls decls =
  (* Topologically sort the declarations (bases first) with an explicit
     DFS so we can report a cycle as a witness path. *)
  let by_name = Hashtbl.create 16 in
  match
    List.iter
      (fun d ->
        if Hashtbl.mem by_name d.d_name then
          raise (Error (Duplicate_class d.d_name));
        Hashtbl.add by_name d.d_name d)
      decls
  with
  | exception Error e -> Result.Error e
  | () ->
    let state = Hashtbl.create 16 in
    (* state: 0 = in progress, 1 = done *)
    let order = ref [] in
    let rec visit stack name =
      match Hashtbl.find_opt state name with
      | Some 1 -> ()
      | Some _ ->
        let cycle =
          let rec take = function
            | [] -> []
            | x :: rest -> if x = name then [ x ] else x :: take rest
          in
          name :: List.rev (take stack)
        in
        raise (Error (Cyclic_hierarchy cycle))
      | None ->
        (match Hashtbl.find_opt by_name name with
        | None -> ()  (* unknown base: reported by the builder below *)
        | Some d ->
          Hashtbl.add state name 0;
          List.iter (fun (b, _, _) -> visit (name :: stack) b) d.d_bases;
          Hashtbl.replace state name 1;
          order := d :: !order)
    in
    (match List.iter (fun d -> visit [] d.d_name) decls with
    | exception Error e -> Result.Error e
    | () ->
      let b = create_builder () in
      (match
         List.iter
           (fun d ->
             ignore (add_class b d.d_name ~bases:d.d_bases ~members:d.d_members))
           (List.rev !order)
       with
      | exception Error e -> Result.Error e
      | () -> Ok (freeze b)))

let member ?(kind = Data) ?(static = false) ?(virtual_ = false)
    ?(access = Public) name =
  { m_name = name; m_kind = kind; m_static = static; m_virtual = virtual_;
    m_access = access }

let num_classes g = Array.length g.names
let num_edges g = g.num_edges
let name g c = g.names.(c)
let find g n = Hashtbl.find g.ids n
let find_opt g n = Hashtbl.find_opt g.ids n
let bases g c = Array.to_list g.base_edges.(c)
let derived g c = g.derived_edges.(c)
let members g c = Array.to_list g.member_arrays.(c)

let find_member g c m =
  Array.find_opt (fun mem -> String.equal mem.m_name m) g.member_arrays.(c)

let declares g c m = Option.is_some (find_member g c m)

let member_names g =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun ms ->
      Array.iter
        (fun m ->
          if not (Hashtbl.mem seen m.m_name) then begin
            Hashtbl.add seen m.m_name ();
            out := m.m_name :: !out
          end)
        ms)
    g.member_arrays;
  List.rev !out

let classes g = List.init (num_classes g) Fun.id

let iter_classes g f =
  for c = 0 to num_classes g - 1 do
    f c
  done

let pp ppf g =
  iter_classes g (fun c ->
      let pp_base ppf b =
        Format.fprintf ppf "%s%s"
          (match b.b_kind with Virtual -> "virtual " | Non_virtual -> "")
          g.names.(b.b_class)
      in
      let pp_member ppf m =
        Format.fprintf ppf "%s%s%s"
          (if m.m_static then "static " else "")
          (if m.m_virtual then "virtual " else "")
          m.m_name
      in
      Format.fprintf ppf "@[<h>class %s" g.names.(c);
      (match bases g c with
      | [] -> ()
      | bs ->
        Format.fprintf ppf " : %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             pp_base)
          bs);
      Format.fprintf ppf " { %a }@]@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           pp_member)
        (members g c))
