(* Tests for the lookup service layer: memo eviction, the compiled-table
   cache, sessions (including mutation repair of compiled columns), the
   cxxlookup-rpc/1 protocol codec, and the request dispatcher. *)

module G = Chg.Graph
module J = Chg.Json
module Path = Subobject.Path
module Spec = Subobject.Spec
module Engine = Lookup_core.Engine
module Memo = Lookup_core.Memo
module Packed = Lookup_core.Packed
module Table_cache = Service.Table_cache
module Session = Service.Session
module Protocol = Service.Protocol
module Server = Service.Server
module W = Hiergen.Workload

let graph () = Hiergen.Figures.fig3 ()
let members = [ "foo"; "bar" ]

let verdict_t g =
  Alcotest.testable
    (fun ppf v ->
      match v with
      | None -> Format.pp_print_string ppf "none"
      | Some v -> Engine.pp_verdict g ppf v)
    ( = )

(* ---- Memo eviction (the residency-cap contract) ---- *)

let test_memo_cap_and_correctness () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  let eng = Engine.build cl in
  let memo = Memo.create ~max_entries:2 cl in
  (* run everything twice: the second pass exercises lookups whose cached
     entries were evicted by later fills *)
  for _ = 1 to 2 do
    G.iter_classes g (fun c ->
        List.iter
          (fun m ->
            Alcotest.check (verdict_t g)
              (Printf.sprintf "verdict %s::%s under 2-entry cap" (G.name g c)
                 m)
              (Engine.lookup eng c m) (Memo.lookup memo c m))
          members)
  done;
  Alcotest.(check bool)
    "cap honoured" true
    (Memo.cached_entries memo <= 2)

let test_memo_evict_and_clear () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  let memo = Memo.create cl in
  G.iter_classes g (fun c -> ignore (Memo.lookup memo c "foo"));
  let resident = Memo.cached_entries memo in
  Alcotest.(check bool) "something resident" true (resident > 0);
  Alcotest.(check int) "evict reports drops" 3 (Memo.evict memo 3);
  Alcotest.(check int) "residency shrank" (resident - 3)
    (Memo.cached_entries memo);
  (* evicting more than resident drops what is left *)
  Alcotest.(check int) "evict is capped" (resident - 3)
    (Memo.evict memo 10_000);
  Alcotest.(check int) "empty" 0 (Memo.cached_entries memo);
  let queries_before = Memo.root_queries memo "foo" in
  Memo.clear memo;
  Alcotest.(check int) "clear keeps query counts" queries_before
    (Memo.root_queries memo "foo");
  (* still correct after total eviction *)
  let eng = Engine.build cl in
  G.iter_classes g (fun c ->
      Alcotest.check (verdict_t g) "post-eviction verdict"
        (Engine.lookup eng c "foo")
        (Memo.lookup memo c "foo"))

let test_memo_root_queries () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  let memo = Memo.create cl in
  Alcotest.(check int) "starts at zero" 0 (Memo.root_queries memo "foo");
  ignore (Memo.lookup memo (G.find g "H") "foo");
  ignore (Memo.lookup memo (G.find g "G") "foo");
  (* H's fill recurses through its bases; only the two public calls
     count *)
  Alcotest.(check int) "root queries only" 2 (Memo.root_queries memo "foo");
  ignore (Memo.materialize_column memo "foo");
  Alcotest.(check int) "materialize is not a query" 2
    (Memo.root_queries memo "foo")

let test_memo_column_matches_engine () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  let eng = Engine.build cl in
  let memo = Memo.create ~max_entries:2 cl in
  let col = Memo.materialize_column memo "bar" in
  Alcotest.(check int) "column length" (G.num_classes g)
    (Packed.column_classes col);
  G.iter_classes g (fun c ->
      Alcotest.check (verdict_t g) "column entry" (Engine.lookup eng c "bar")
        (Packed.column_get col c))

let test_memo_bad_cap () =
  let cl = Chg.Closure.compute (graph ()) in
  Alcotest.check_raises "zero cap rejected"
    (Invalid_argument "Memo.create: max_entries must be >= 1")
    (fun () -> ignore (Memo.create ~max_entries:0 cl))

(* ---- Table cache: LRU, budgets, invalidation ---- *)

let col_of verdicts = Packed.pack_column verdicts

let red c = Some (Engine.Red { r_ldc = c; r_lvs = [ Lookup_core.Abstraction.Omega ] })

let test_cache_lru () =
  let t = Table_cache.create ~max_entries:2 () in
  Table_cache.promote t "a" (col_of [| red 0; None; None |]);
  Table_cache.promote t "b" (col_of [| None; red 1; None |]);
  ignore (Table_cache.find t "a") (* touch: "b" becomes LRU *);
  Table_cache.promote t "c" (col_of [| None; None; red 2 |]);
  Alcotest.(check bool) "a survives (recently used)" true
    (Table_cache.mem t "a");
  Alcotest.(check bool) "b evicted (LRU)" false (Table_cache.mem t "b");
  Alcotest.(check bool) "c resident" true (Table_cache.mem t "c");
  Alcotest.(check int) "entries at cap" 2 (Table_cache.entries t);
  let find k = List.assoc k (Table_cache.counters t) in
  Alcotest.(check int) "promotions" 3 (find "table_promotions");
  Alcotest.(check int) "evictions" 1 (find "table_evictions");
  Alcotest.(check int) "hits" 1 (find "table_hits")

let test_cache_byte_budget () =
  (* a budget smaller than one column: the newly promoted column always
     survives its own promotion, everything else goes *)
  let t = Table_cache.create ~max_bytes:64 () in
  Table_cache.promote t "a" (col_of [| red 0; red 1; None |]);
  Table_cache.promote t "b" (col_of [| red 0; red 1; None |]);
  Alcotest.(check int) "only the newest column resident" 1
    (Table_cache.entries t);
  Alcotest.(check bool) "and it is the newest" true (Table_cache.mem t "b");
  Alcotest.(check bool) "byte estimate is positive" true
    (Table_cache.bytes t > 0)

let test_cache_invalidate_and_update () =
  let t = Table_cache.create () in
  Table_cache.promote t "a" (col_of [| red 0 |]);
  Table_cache.promote t "b" (col_of [| red 0 |]);
  Alcotest.(check bool) "invalidate resident" true
    (Table_cache.invalidate t "a");
  Alcotest.(check bool) "invalidate absent" false
    (Table_cache.invalidate t "a");
  Alcotest.(check (option bool)) "a gone" None
    (Option.map (fun _ -> true) (Table_cache.find t "a"));
  (* the add_class path: extend every resident column *)
  Table_cache.update_columns t (fun _ col ->
      Some (Packed.column_append col (red 1)));
  (match Table_cache.find t "b" with
  | Some col ->
    Alcotest.(check int) "extended" 2 (Packed.column_classes col);
    Alcotest.check (verdict_t (graph ())) "new slot" (red 1)
      (Packed.column_get col 1)
  | None -> Alcotest.fail "column b disappeared");
  (* update returning None drops the column *)
  Table_cache.update_columns t (fun _ _ -> None);
  Alcotest.(check int) "all dropped" 0 (Table_cache.entries t)

(* ---- Sessions ---- *)

let session_config =
  { Session.default_config with promote_threshold = 2 }

let test_session_serves_and_promotes () =
  let g = graph () in
  let s = Session.create ~config:session_config ~name:"t" g in
  let eng = Engine.build (Chg.Closure.compute g) in
  let expect_served cls m layer =
    match Session.lookup s cls m with
    | Error c -> Alcotest.failf "unknown class %s" c
    | Ok (v, served) ->
      Alcotest.check (verdict_t g)
        (Printf.sprintf "%s::%s agrees with engine" cls m)
        (Engine.lookup eng (G.find g cls) m)
        v;
      Alcotest.(check string)
        (Printf.sprintf "%s::%s served via" cls m)
        layer
        (Session.served_string served)
  in
  expect_served "H" "foo" "memo" (* query 1 of foo *);
  expect_served "G" "foo" "memo" (* query 2: crosses threshold, promotes *);
  expect_served "H" "foo" "table";
  expect_served "A" "foo" "table";
  expect_served "H" "bar" "memo";
  Alcotest.(check bool) "foo column resident" true
    (Table_cache.mem (Session.cache s) "foo");
  let c = Session.counters s in
  Alcotest.(check int) "lookup counter" 5 (List.assoc "lookups" c)

let test_session_unknown_class () =
  let s = Session.create ~name:"t" (graph ()) in
  match Session.lookup s "Nope" "foo" with
  | Error c -> Alcotest.(check string) "echoes the class" "Nope" c
  | Ok _ -> Alcotest.fail "lookup of unknown class succeeded"

(* the oracle for mutations: rebuild the mutated hierarchy from scratch
   and run the eager engine on it *)
let engine_of_session s =
  Engine.build (Chg.Closure.compute (Session.graph s))

let check_all_lookups s =
  let g = Session.graph s in
  let eng = engine_of_session s in
  G.iter_classes g (fun c ->
      List.iter
        (fun m ->
          match Session.lookup s (G.name g c) m with
          | Error cls -> Alcotest.failf "lost class %s" cls
          | Ok (v, _) ->
            Alcotest.check (verdict_t g)
              (Printf.sprintf "%s::%s vs fresh engine" (G.name g c) m)
              (Engine.lookup eng c m) v)
        (G.member_names g))

let test_session_add_class_extends_columns () =
  let g = graph () in
  let s = Session.create ~config:session_config ~name:"t" g in
  (* warm: promote foo's column *)
  ignore (Session.lookup s "H" "foo");
  ignore (Session.lookup s "G" "foo");
  Alcotest.(check bool) "foo compiled" true
    (Table_cache.mem (Session.cache s) "foo");
  let id =
    Session.add_class s ~cls:"Z"
      ~bases:[ ("H", G.Non_virtual, G.Public); ("F", G.Virtual, G.Public) ]
      ~members:[ G.member "baz" ]
  in
  Alcotest.(check int) "dense id appended" (G.num_classes g) id;
  Alcotest.(check int) "epoch bumped" 1 (Session.epoch s);
  (* the warm column survived the mutation and covers the new class *)
  Alcotest.(check bool) "foo column still resident" true
    (Table_cache.mem (Session.cache s) "foo");
  (match Session.lookup s "Z" "foo" with
  | Ok (_, served) ->
    Alcotest.(check string) "new class served from the extended column"
      "table"
      (Session.served_string served)
  | Error c -> Alcotest.failf "lost class %s" c);
  check_all_lookups s

let test_session_add_member_invalidates () =
  let g = graph () in
  let s = Session.create ~config:session_config ~name:"t" g in
  ignore (Session.lookup s "H" "foo");
  ignore (Session.lookup s "G" "foo");
  let rows, invalidated = Session.add_member s ~cls:"B" (G.member "foo") in
  Alcotest.(check bool) "compiled column was invalidated" true invalidated;
  Alcotest.(check bool) "some rows recomputed" true (rows > 0);
  Alcotest.(check bool) "column no longer resident" false
    (Table_cache.mem (Session.cache s) "foo");
  Alcotest.(check int) "epoch bumped" 1 (Session.epoch s);
  check_all_lookups s;
  (* an unrelated member's addition leaves nothing to invalidate *)
  let _, invalidated2 = Session.add_member s ~cls:"B" (G.member "qux") in
  Alcotest.(check bool) "nothing resident to invalidate" false invalidated2;
  check_all_lookups s

(* ---- Protocol codec ---- *)

let parse line =
  match Protocol.parse_request line with
  | Ok rq -> rq
  | Error (_, code, msg) ->
    Alcotest.failf "parse failed: %s %s" (Protocol.code_string code) msg

let test_protocol_parse_ok () =
  let rq = parse {|{"id":7,"op":"lookup","session":"s","class":"A","member":"m"}|} in
  Alcotest.(check bool) "id echo" true (rq.Protocol.rq_id = J.Int 7);
  Alcotest.(check (option string)) "session" (Some "s")
    rq.Protocol.rq_session;
  (match rq.Protocol.rq_op with
  | Protocol.Lookup
      { lk_query = { q_class = "A"; q_member = "m" }; lk_semantics = Mro.Cpp }
    -> ()
  | _ -> Alcotest.fail "wrong op");
  (match (parse {|{"op":"batch_lookup","session":"s","queries":[{"class":"A","member":"m"},{"class":"B","member":"n"}]}|}).Protocol.rq_op with
  | Protocol.Batch_lookup { bl_queries = [ a; b ]; bl_semantics = Mro.Cpp } ->
    Alcotest.(check string) "q1" "A" a.Protocol.q_class;
    Alcotest.(check string) "q2 member" "n" b.Protocol.q_member
  | _ -> Alcotest.fail "wrong batch op");
  (match (parse {|{"op":"mutate","session":"s","add_member":{"class":"C","member":{"name":"m","static":true}}}|}).Protocol.rq_op with
  | Protocol.Mutate (Protocol.Add_member { mm_class = "C"; mm_member }) ->
    Alcotest.(check bool) "static parsed" true mm_member.G.m_static
  | _ -> Alcotest.fail "wrong mutate op");
  (* versioned request accepted *)
  match (parse {|{"rpc":"cxxlookup-rpc/1","op":"stats"}|}).Protocol.rq_op with
  | Protocol.Stats -> ()
  | _ -> Alcotest.fail "wrong stats op"

let expect_error line code =
  match Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "accepted %s" line
  | Error (_, c, _) ->
    Alcotest.(check string)
      (Printf.sprintf "error code for %s" line)
      (Protocol.code_string code) (Protocol.code_string c)

let test_protocol_parse_errors () =
  expect_error "nonsense" Protocol.Parse_error;
  expect_error {|[1,2]|} Protocol.Bad_request;
  expect_error {|{"id":1}|} Protocol.Bad_request;
  expect_error {|{"op":"frobnicate"}|} Protocol.Unknown_op;
  expect_error {|{"rpc":"cxxlookup-rpc/2","op":"stats"}|}
    Protocol.Bad_version;
  expect_error {|{"op":"lookup","class":"A"}|} Protocol.Bad_request;
  (* the id is still recovered for the error response *)
  match Protocol.parse_request {|{"id":"q1","op":"frobnicate"}|} with
  | Error (id, _, _) ->
    Alcotest.(check bool) "id recovered" true (id = J.String "q1")
  | Ok _ -> Alcotest.fail "accepted unknown op"

(* ---- Server dispatch ---- *)

let field r name =
  match J.member name r with
  | Ok v -> v
  | Error e -> Alcotest.failf "response lacks %s: %s" name e

let is_ok r = field r "ok" = J.Bool true

let error_code r =
  match J.member "code" (field r "error") with
  | Ok (J.String s) -> s
  | _ -> Alcotest.fail "unstructured error"

let open_request ?(session = "s") g =
  J.Obj
    [ ("id", J.Int 0); ("op", J.String "open");
      ("session", J.String session); ("chg", Chg.Serialize.to_json g) ]

let test_server_open_and_errors () =
  let srv = Server.create () in
  let r = Server.handle_json srv (open_request (graph ())) in
  Alcotest.(check bool) "open ok" true (is_ok r);
  Alcotest.(check bool) "class count" true (field r "classes" = J.Int 8);
  let dup = Server.handle_json srv (open_request (graph ())) in
  Alcotest.(check string) "duplicate session" "duplicate_session"
    (error_code dup);
  let unknown =
    Server.handle_line srv
      {|{"id":1,"op":"lookup","session":"nope","class":"A","member":"foo"}|}
  in
  Alcotest.(check string) "unknown session" "unknown_session"
    (error_code unknown);
  let bad_class =
    Server.handle_line srv
      {|{"id":2,"op":"lookup","session":"s","class":"Nope","member":"foo"}|}
  in
  Alcotest.(check string) "unknown class" "unknown_class"
    (error_code bad_class);
  let closed =
    Server.handle_line srv {|{"id":3,"op":"close","session":"s"}|}
  in
  Alcotest.(check bool) "close ok" true (is_ok closed);
  Alcotest.(check string) "closed session gone" "unknown_session"
    (error_code
       (Server.handle_line srv {|{"id":4,"op":"close","session":"s"}|}));
  (* duplicate open, unknown session, unknown class, close-after-close *)
  let errors = List.assoc "errors" (Server.counters srv) in
  Alcotest.(check int) "error counter" 4 errors

let test_server_open_source_rejects_bad () =
  let srv = Server.create () in
  let r =
    Server.handle_line srv
      {|{"id":0,"op":"open","source":"struct A : NotDeclared {};"}|}
  in
  Alcotest.(check string) "bad hierarchy" "bad_hierarchy" (error_code r)

(* every malformed line and misdirected verb must come back as a
   structured error response — the server never throws, never dies *)
let test_server_protocol_error_paths () =
  let srv = Server.create () in
  let code line = error_code (Server.handle_line srv line) in
  Alcotest.(check string) "malformed json" "parse_error" (code "{not json");
  Alcotest.(check string) "truncated json" "parse_error"
    (code {|{"op":"stats"|});
  Alcotest.(check string) "non-object request" "bad_request"
    (code {|[1,2,3]|});
  Alcotest.(check string) "unknown verb" "unknown_op"
    (code {|{"op":"defragment"}|});
  Alcotest.(check string) "lookup without session" "bad_request"
    (code {|{"op":"lookup","class":"A","member":"m"}|});
  Alcotest.(check string) "lookup against nonexistent session"
    "unknown_session"
    (code {|{"op":"lookup","session":"ghost","class":"A","member":"m"}|});
  Alcotest.(check string) "mutate with both kinds" "bad_request"
    (code
       {|{"op":"mutate","session":"ghost","add_class":{"name":"X"},"add_member":{"class":"X","member":{"name":"m"}}}|});
  ignore (Server.handle_json srv (open_request (graph ())));
  (* durability verbs without a store: structured store_error *)
  Alcotest.(check string) "snapshot without store" "store_error"
    (code {|{"op":"snapshot","session":"s"}|});
  Alcotest.(check string) "restore without store" "store_error"
    (code {|{"op":"restore","session":"elsewhere"}|});
  (* a closed session is gone: lookups answer unknown_session *)
  Alcotest.(check bool) "close ok" true
    (is_ok (Server.handle_line srv {|{"op":"close","session":"s"}|}));
  Alcotest.(check string) "lookup against closed session" "unknown_session"
    (code {|{"op":"lookup","session":"s","class":"A","member":"foo"}|});
  (* the server survived all of it: a fresh open still works *)
  Alcotest.(check bool) "still serving" true
    (is_ok (Server.handle_json srv (open_request (graph ()))))

(* ---- the durable server: store-backed open/mutate/restore ---------- *)

let with_temp_store f =
  let dir = Filename.temp_file "cxxsrv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_server_store_restart () =
  with_temp_store (fun dir ->
      let store = Store.open_dir dir in
      let srv = Server.create ~store () in
      Alcotest.(check bool) "open ok" true
        (is_ok (Server.handle_json srv (open_request ~session:"d" (graph ()))));
      Alcotest.(check bool) "mutate ok" true
        (is_ok
           (Server.handle_line srv
              {|{"op":"mutate","session":"d","add_member":{"class":"B","member":{"name":"zap"}}}|}));
      (* restoring a name that is open is a duplicate, not a reopen *)
      Alcotest.(check string) "restore of open session" "duplicate_session"
        (error_code
           (Server.handle_line srv {|{"op":"restore","session":"d"}|}));
      (* stats carry the protocol version and the session epoch *)
      let st = Server.handle_line srv {|{"op":"stats","session":"d"}|} in
      Alcotest.(check bool) "stats protocol" true
        (field st "protocol" = J.String Protocol.version);
      Alcotest.(check bool) "stats epoch" true (field st "epoch" = J.Int 1);
      Store.close store;
      (* restart: a new server over the same directory recovers it all *)
      let store2 = Store.open_dir dir in
      let srv2 = Server.create ~store:store2 () in
      (match Server.recover_sessions srv2 with
      | [ Server.Recovered { r_session = "d"; r_epoch = 1; r_replayed = 1;
                             r_torn = false } ] -> ()
      | other ->
        Alcotest.failf "unexpected recovery: %d results"
          (List.length other));
      let r =
        Server.handle_line srv2
          {|{"op":"lookup","session":"d","class":"H","member":"zap"}|}
      in
      Alcotest.(check bool) "recovered verdict" true
        (field r "verdict" = J.String "red"
        && field r "resolves_to" = J.String "B");
      (* restore of a never-stored name: structured store_error *)
      Alcotest.(check string) "restore unknown name" "store_error"
        (error_code
           (Server.handle_line srv2 {|{"op":"restore","session":"nope"}|}));
      (* close, then reopen from the store via the restore verb *)
      Alcotest.(check bool) "close ok" true
        (is_ok (Server.handle_line srv2 {|{"op":"close","session":"d"}|}));
      let back = Server.handle_line srv2 {|{"op":"restore","session":"d"}|} in
      Alcotest.(check bool) "restore ok" true (is_ok back);
      Alcotest.(check bool) "restore epoch" true
        (field back "epoch" = J.Int 1);
      let r2 =
        Server.handle_line srv2
          {|{"op":"lookup","session":"d","class":"H","member":"zap"}|}
      in
      Alcotest.(check bool) "verdict after restore verb" true
        (field r2 "verdict" = J.String "red");
      Store.close store2)

(* ---- observability: metrics verb, stats fields, request log, flight
   recorder ---- *)

let test_server_metrics_verb () =
  let srv = Server.create () in
  ignore (Server.handle_json srv (open_request (graph ())));
  ignore
    (Server.handle_line srv
       {|{"op":"lookup","session":"s","class":"A","member":"foo"}|});
  let r = Server.handle_line srv {|{"op":"metrics"}|} in
  Alcotest.(check bool) "metrics ok" true (is_ok r);
  Alcotest.(check bool) "content type announced" true
    (field r "format" = J.String "text/plain; version=0.0.4");
  let body =
    match field r "body" with
    | J.String s -> s
    | _ -> Alcotest.fail "metrics body is not a string"
  in
  (match Telemetry.Expocheck.check body with
  | Ok n -> Alcotest.(check bool) "exposition has samples" true (n > 0)
  | Error e -> Alcotest.failf "metrics body rejected: %s" e);
  let has needle =
    let nl = String.length needle and bl = String.length body in
    let rec scan i =
      i + nl <= bl && (String.sub body i nl = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "request counter exposed" true
    (has "cxxlookup_server_requests_total");
  Alcotest.(check bool) "per-verb duration histogram exposed" true
    (has "cxxlookup_server_request_duration_ns_bucket");
  Alcotest.(check bool) "session series labelled" true
    (has "session=\"s\"");
  (* two scrapes of a quiet server must be monotone (the counter moved
     only by the metrics request in between) *)
  let r2 = Server.handle_line srv {|{"op":"metrics"}|} in
  let body2 =
    match field r2 "body" with J.String s -> s | _ -> assert false
  in
  match Telemetry.Expocheck.check_monotone ~prev:body ~next:body2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scrapes not monotone: %s" e

let test_server_stats_observability_fields () =
  let srv = Server.create () in
  ignore (Server.handle_json srv (open_request (graph ())));
  ignore
    (Server.handle_line srv
       {|{"op":"lookup","session":"s","class":"A","member":"foo"}|});
  ignore (Server.handle_line srv {|{"op":"defragment"}|}) (* unknown_op *);
  let r = Server.handle_line srv {|{"op":"stats"}|} in
  let service = field r "service" in
  (match J.member "uptime_ns" service with
  | Ok (J.Int ns) ->
    Alcotest.(check bool) "uptime positive" true (ns >= 0)
  | _ -> Alcotest.fail "stats lacks service.uptime_ns");
  (match J.member "verbs" service with
  | Ok verbs ->
    Alcotest.(check bool) "per-verb counts" true
      (J.member "lookup" verbs = Ok (J.Int 1)
      && J.member "open" verbs = Ok (J.Int 1))
  | Error e -> Alcotest.failf "stats lacks service.verbs: %s" e);
  match J.member "error_codes" service with
  | Ok codes ->
    Alcotest.(check bool) "per-code counts" true
      (J.member "unknown_op" codes = Ok (J.Int 1))
  | Error e -> Alcotest.failf "stats lacks service.error_codes: %s" e

let test_server_request_log_and_flight () =
  let path = Filename.temp_file "cxxlog" ".jsonl" in
  let log = Service.Request_log.open_path path in
  let srv = Server.create ~request_log:log ~slow_ms:0 () in
  ignore (Server.handle_json srv (open_request (graph ())));
  ignore
    (Server.handle_line srv
       {|{"id":"q1","op":"lookup","session":"s","class":"A","member":"foo"}|});
  ignore (Server.handle_line srv {|{"op":"nonsense"}|});
  Service.Request_log.close log;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one log line per request" 3 (List.length lines);
  let parsed =
    List.map
      (fun l ->
        match J.of_string l with
        | Ok j -> j
        | Error e -> Alcotest.failf "log line not JSON: %s (%s)" l e)
      lines
  in
  let second = List.nth parsed 1 in
  Alcotest.(check bool) "verb recorded" true
    (J.member "verb" second = Ok (J.String "lookup"));
  Alcotest.(check bool) "request id carried" true
    (J.member "id" second = Ok (J.String "q1"));
  Alcotest.(check bool) "outcome ok" true
    (J.member "outcome" second = Ok (J.String "ok"));
  Alcotest.(check bool) "slow_ms 0 marks everything slow" true
    (J.member "slow" second = Ok (J.Bool true));
  Alcotest.(check bool) "response bytes measured when log on" true
    (match J.member "bytes" second with
    | Ok (J.Int b) -> b > 0
    | _ -> false);
  let third = List.nth parsed 2 in
  Alcotest.(check bool) "error outcome recorded" true
    (J.member "outcome" third = Ok (J.String "unknown_op"));
  (* the flight recorder holds the same requests, oldest first *)
  let dump = Filename.temp_file "cxxflight" ".txt" in
  let oc = open_out dump in
  Server.dump_flight srv oc;
  close_out oc;
  let ic = open_in dump in
  let first_line = input_line ic in
  close_in ic;
  Sys.remove dump;
  Alcotest.(check string) "flight header counts requests"
    "--- cxxlookup flight recorder: last 3 of 3 requests ---" first_line

(* ---- QCheck: the wire protocol against the spec oracle ---- *)

let qc_members = [ "m"; "n"; "p" ]

let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members:qc_members ~seed)
      (tup5 (int_range 1 14) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let instance_arb =
  QCheck.make instance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

let result_matches_spec g (q : W.query) r =
  let verdict =
    match J.member "verdict" r with
    | Ok (J.String s) -> s
    | _ -> "?"
  in
  match Spec.lookup_static g q.W.q_class q.W.q_member with
  | Spec.Resolved p ->
    verdict = "red"
    && J.member "resolves_to" r = Ok (J.String (G.name g (Path.ldc p)))
  | Spec.Ambiguous _ -> verdict = "blue"
  | Spec.Undeclared -> verdict = "none"

let prop_batch_matches_spec =
  QCheck.Test.make ~count:120
    ~name:"batch_lookup over exhaustive workload = spec oracle" instance_arb
    (fun { Hiergen.Families.graph = g; _ } ->
      let srv = Server.create () in
      let opened = Server.handle_json srv (open_request g) in
      opened <> J.Null
      && is_ok opened
      &&
      let ws = W.exhaustive g in
      let resp =
        Server.handle_line srv (W.to_batch_request ~session:"s" g ws)
      in
      is_ok resp
      &&
      match J.member "results" resp with
      | Ok (J.List rs) when List.length rs = List.length ws ->
        List.for_all2 (result_matches_spec g) ws rs
      | _ -> false)

let prop_serve_sessions_promote =
  (* replaying a workload twice per session: answers stay equal to the
     first pass even as serving shifts from memo to compiled columns *)
  QCheck.Test.make ~count:60 ~name:"promotion never changes answers"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let config = { Session.default_config with promote_threshold = 1 } in
      let s = Session.create ~config ~name:"q" g in
      let ws = W.exhaustive g in
      let run () =
        List.map
          (fun (q : W.query) ->
            match Session.lookup s (G.name g q.W.q_class) q.W.q_member with
            | Ok (v, _) -> v
            | Error _ -> assert false)
          ws
      in
      run () = run ())

let suite =
  [ Alcotest.test_case "memo cap keeps verdicts intact" `Quick
      test_memo_cap_and_correctness;
    Alcotest.test_case "memo evict/clear" `Quick test_memo_evict_and_clear;
    Alcotest.test_case "memo root-query counting" `Quick
      test_memo_root_queries;
    Alcotest.test_case "memo materialized column" `Quick
      test_memo_column_matches_engine;
    Alcotest.test_case "memo rejects bad cap" `Quick test_memo_bad_cap;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "cache byte budget" `Quick test_cache_byte_budget;
    Alcotest.test_case "cache invalidate/update" `Quick
      test_cache_invalidate_and_update;
    Alcotest.test_case "session serves and promotes" `Quick
      test_session_serves_and_promotes;
    Alcotest.test_case "session unknown class" `Quick
      test_session_unknown_class;
    Alcotest.test_case "add_class extends compiled columns" `Quick
      test_session_add_class_extends_columns;
    Alcotest.test_case "add_member invalidates its column" `Quick
      test_session_add_member_invalidates;
    Alcotest.test_case "protocol parses every verb" `Quick
      test_protocol_parse_ok;
    Alcotest.test_case "protocol error codes" `Quick
      test_protocol_parse_errors;
    Alcotest.test_case "server open/close and errors" `Quick
      test_server_open_and_errors;
    Alcotest.test_case "server rejects bad source" `Quick
      test_server_open_source_rejects_bad;
    Alcotest.test_case "server protocol error paths" `Quick
      test_server_protocol_error_paths;
    Alcotest.test_case "server store restart" `Quick
      test_server_store_restart;
    Alcotest.test_case "metrics verb renders the registry" `Quick
      test_server_metrics_verb;
    Alcotest.test_case "stats observability fields" `Quick
      test_server_stats_observability_fields;
    Alcotest.test_case "request log and flight recorder" `Quick
      test_server_request_log_and_flight ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_batch_matches_spec; prop_serve_sessions_promote ]
