Prometheus exposition over one translation unit: `cxxlookup metrics`
runs every engine (eager, memo, incremental, packed) over the paper's
Figure 1 hierarchy and renders the shared registry.

  $ cxxlookup metrics ../../examples/fig1.cpp > fig1.prom

The exposition validates against the project's own format checker
(line grammar, HELP/TYPE placement, cumulative histogram buckets).

  $ cxxlookup check-metrics fig1.prom
  ok: fig1.prom: 84 samples

The metric names are a stable interface: dashboards key on them, so
renames are breaking changes and must show up in this golden.

  $ grep '^# TYPE' fig1.prom
  # TYPE cxxlookup_engine_blue_verdicts_total counter
  # TYPE cxxlookup_engine_classes_visited_total counter
  # TYPE cxxlookup_engine_column_cost histogram
  # TYPE cxxlookup_engine_declared_kills_total counter
  # TYPE cxxlookup_engine_dominance_probes_total counter
  # TYPE cxxlookup_engine_edge_traversals_total counter
  # TYPE cxxlookup_engine_incr_closure_bits_total counter
  # TYPE cxxlookup_engine_incr_row_members_total counter
  # TYPE cxxlookup_engine_incr_rows_total counter
  # TYPE cxxlookup_engine_members_processed_total counter
  # TYPE cxxlookup_engine_memo_hits_total counter
  # TYPE cxxlookup_engine_memo_misses_total counter
  # TYPE cxxlookup_engine_memo_recursive_fills_total counter
  # TYPE cxxlookup_engine_o_extensions_total counter
  # TYPE cxxlookup_engine_red_demotions_total counter
  # TYPE cxxlookup_engine_red_verdicts_total counter
  # TYPE cxxlookup_graph_classes gauge
  # TYPE cxxlookup_graph_edges gauge
  # TYPE cxxlookup_graph_members gauge
  # TYPE cxxlookup_memo_cached_entries gauge
  # TYPE cxxlookup_packed_boxed_bytes gauge
  # TYPE cxxlookup_packed_bytes gauge

Figure 1's single ambiguous lookup (E, m) is visible as one blue
verdict in every engine — the counters are the paper's unit
operations, so they agree across implementations.

  $ grep 'cxxlookup_engine_blue_verdicts_total' fig1.prom | grep -v '^#'
  cxxlookup_engine_blue_verdicts_total{engine="eager"} 1
  cxxlookup_engine_blue_verdicts_total{engine="incremental"} 1
  cxxlookup_engine_blue_verdicts_total{engine="memo"} 1
  cxxlookup_engine_blue_verdicts_total{engine="packed"} 1

The packed build fans columns over domains, but the column-cost
histogram merges losslessly, so the whole exposition is byte-identical
for any --jobs value.

  $ cxxlookup metrics --jobs 4 ../../examples/fig1.cpp | cmp - fig1.prom

The serve loop exposes the same registry in-band: the `metrics` verb
returns the exposition as a string body with its content type.

  $ cxxlookup serve <<'EOF' > transcript.jsonl
  > {"id":0,"op":"open","session":"s","source":"struct A { int m; }; struct B : A {};"}
  > {"id":1,"op":"lookup","session":"s","class":"B","member":"m"}
  > {"id":2,"op":"metrics"}
  > EOF
  $ sed -n '3p' transcript.jsonl | grep -o '"id":2,"ok":true,"format":"text/plain; version=0.0.4"'
  "id":2,"ok":true,"format":"text/plain; version=0.0.4"

The in-band body carries the server- and session-level series (the
session label rides on every per-session metric).

  $ sed -n '3p' transcript.jsonl | grep -c 'cxxlookup_server_requests_total{verb=\\"lookup\\"} 1'
  1
  $ sed -n '3p' transcript.jsonl | grep -c 'cxxlookup_session_lookups_total{session=\\"s\\"} 1'
  1

The raw-path histograms are part of the same stable-name contract, and
both are registered eagerly — present (empty) from the first scrape, so
dashboards can key on them before any 1b frame arrives or any mmap
restore runs.  Frame decode time lives on the server registry; the mmap
restore time joins it when the server fronts a store.

  $ sed -n '3p' transcript.jsonl | grep -c 'cxxlookup_server_frame_decode_ns_count'
  1
  $ cxxlookup serve --store st <<'EOF' > stored.jsonl
  > {"id":0,"op":"open","session":"s","source":"struct A { int m; };"}
  > {"id":1,"op":"metrics"}
  > EOF
  $ sed -n '2p' stored.jsonl | grep -c 'cxxlookup_store_mmap_restore_ns_count'
  1

--metrics-file mirrors the registry to a textfile-collector file,
rewritten atomically and once more at EOF; the scrape validates.

  $ cxxlookup serve --metrics-file node.prom <<'EOF' > /dev/null
  > {"id":0,"op":"open","session":"s","source":"struct A { int m; };"}
  > {"id":1,"op":"lookup","session":"s","class":"A","member":"m"}
  > EOF
  $ cxxlookup check-metrics node.prom | sed 's/: [0-9]* samples/: N samples/'
  ok: node.prom: N samples
  $ grep -c 'cxxlookup_server_uptime_ns' node.prom
  3

check-metrics is a real gate: a scrape with non-cumulative buckets is
rejected with the offending series named.

  $ cat > bad.prom <<'EOF'
  > # TYPE h histogram
  > h_bucket{le="1"} 5
  > h_bucket{le="2"} 3
  > h_bucket{le="+Inf"} 5
  > h_sum 9
  > h_count 5
  > EOF
  $ cxxlookup check-metrics bad.prom
  error: bad.prom: histogram h{}: bucket counts not cumulative
  [1]

Across two scrapes of the same process, counters must not go
backwards; --prev enforces it.

  $ printf '# TYPE a_total counter\na_total 5\n' > prev.prom
  $ printf '# TYPE a_total counter\na_total 4\n' > next.prom
  $ cxxlookup check-metrics --prev prev.prom next.prom
  ok: next.prom: 1 samples
  error: a_total series "|" went backwards: 5 -> 4
  [1]
  $ cxxlookup check-metrics --prev next.prom prev.prom | sed 's/: [0-9]* samples/: N samples/'
  ok: prev.prom: N samples
  ok: monotone against next.prom
