(* Tests for the baseline algorithms: the naive two-phase propagation,
   the Rossie-Friedman subobject-graph lookup, the bug-compatible g++
   scan (including the Figure 9 counterexample), and the Eiffel-style
   topological shortcut. *)

module G = Chg.Graph
module Path = Subobject.Path
module Spec = Subobject.Spec
module Sgraph = Subobject.Sgraph

let figures =
  [ ("fig1", Hiergen.Figures.fig1 ());
    ("fig2", Hiergen.Figures.fig2 ());
    ("fig3", Hiergen.Figures.fig3 ());
    ("fig9", Hiergen.Figures.fig9 ()) ]

let test_naive_matches_spec () =
  List.iter
    (fun (tag, g) ->
      G.iter_classes g (fun c ->
          List.iter
            (fun m ->
              let expected = Spec.lookup g c m in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s::%s" tag (G.name g c) m)
                true
                (Spec.verdict_equal g expected (Baselines.Naive.lookup g c m));
              Alcotest.(check bool)
                (Printf.sprintf "%s killing %s::%s" tag (G.name g c) m)
                true
                (Spec.verdict_equal g expected
                   (Baselines.Naive.lookup_killing g c m)))
            (G.member_names g)))
    figures

let test_naive_propagation_fig4 () =
  (* Figure 4: reaching definitions of foo.  At H five definitions
     arrive; ABDFH and ACDFH (via F) are killed by GH, and GH survives.
     At G the two incoming definitions are killed by the generated
     G::foo. *)
  let g = Hiergen.Figures.fig3 () in
  let defs = Baselines.Naive.propagate g "foo" in
  let at name = defs.(G.find g name) in
  let surviving rs =
    List.filter_map
      (fun (r : Baselines.Naive.reaching) ->
        if r.killed then None else Some (Path.to_string g r.path))
      rs
  in
  let killed rs =
    List.filter_map
      (fun (r : Baselines.Naive.reaching) ->
        if r.killed then Some (Path.to_string g r.path) else None)
      rs
  in
  Alcotest.(check int) "5 definitions reach H" 5 (List.length (at "H"));
  Alcotest.(check (list string)) "GH survives at H" [ "G-H" ]
    (surviving (at "H"));
  Alcotest.(check int) "4 killed at H" 4 (List.length (killed (at "H")));
  Alcotest.(check (list string)) "generated G::foo survives at G" [ "G" ]
    (surviving (at "G"));
  Alcotest.(check int) "2 killed at G" 2 (List.length (killed (at "G")));
  (* At D both definitions survive (mutually incomparable). *)
  Alcotest.(check int) "2 survive at D" 2 (List.length (surviving (at "D")))

let test_naive_propagation_fig5 () =
  (* Figure 5: definitions of bar.  The blue EF definition must reach H
     (it is not killed anywhere), which keeps lookup(H,bar) ambiguous. *)
  let g = Hiergen.Figures.fig3 () in
  let defs = Baselines.Naive.propagate g "bar" in
  let at_h = defs.(G.find g "H") in
  let paths =
    List.map
      (fun (r : Baselines.Naive.reaching) -> Path.to_string g r.path)
      at_h
  in
  Alcotest.(check bool) "E-F-H reaches H" true
    (List.mem "E-F-H" paths);
  let e_def =
    List.find
      (fun (r : Baselines.Naive.reaching) ->
        Path.to_string g r.path = "E-F-H")
      at_h
  in
  Alcotest.(check bool) "E-F-H not killed" false e_def.killed

let test_rf_matches_spec () =
  List.iter
    (fun (tag, g) ->
      G.iter_classes g (fun c ->
          let sg = Sgraph.build g c in
          List.iter
            (fun m ->
              let expected = Spec.lookup g c m in
              let got =
                Baselines.Rf_lookup.to_spec sg
                  (Baselines.Rf_lookup.lookup_in sg m)
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s::%s" tag (G.name g c) m)
                true
                (Spec.verdict_equal g expected got))
            (G.member_names g)))
    figures

let test_gxx_bug_fig9 () =
  (* The headline reproduction: lookup(E, m) is unambiguous but the g++
     scan reports ambiguity; the fixed scan and the paper's algorithm
     both resolve it to C::m. *)
  let g = Hiergen.Figures.fig9 () in
  let e = G.find g "E" in
  (match Baselines.Gxx.lookup ~mode:Baselines.Gxx.Buggy g e "m" with
  | Baselines.Gxx.Ambiguous -> ()
  | _ -> Alcotest.fail "g++ scan should (wrongly) report ambiguity");
  let sg = Sgraph.build g e in
  (match Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Fixed sg "m" with
  | Baselines.Gxx.Resolved s ->
    Alcotest.(check string) "fixed scan resolves to C" "C"
      (G.name g (Sgraph.ldc sg s))
  | _ -> Alcotest.fail "fixed scan should resolve");
  match Spec.lookup g e "m" with
  | Spec.Resolved p ->
    Alcotest.(check string) "spec resolves to C" "C" (G.name g (Path.ldc p))
  | _ -> Alcotest.fail "spec should resolve"

let test_gxx_correct_on_simple () =
  (* Where no dominance-after-incomparable pattern occurs, the buggy scan
     agrees with the spec. *)
  List.iter
    (fun (tag, g) ->
      G.iter_classes g (fun c ->
          List.iter
            (fun m ->
              let spec = Spec.lookup g c m in
              let gxx = Baselines.Gxx.lookup ~mode:Baselines.Gxx.Buggy g c m in
              let agree =
                match (spec, gxx) with
                | Spec.Undeclared, Baselines.Gxx.Undeclared -> true
                | Spec.Resolved _, Baselines.Gxx.Resolved _ -> true
                | Spec.Ambiguous _, Baselines.Gxx.Ambiguous -> true
                | _ -> false
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s::%s" tag (G.name g c) m)
                true agree)
            (G.member_names g)))
    [ ("fig1", Hiergen.Figures.fig1 ()); ("fig2", Hiergen.Figures.fig2 ()) ]

let test_gxx_fixed_matches_spec_everywhere () =
  List.iter
    (fun (tag, g) ->
      G.iter_classes g (fun c ->
          let sg = Sgraph.build g c in
          List.iter
            (fun m ->
              let spec = Spec.lookup g c m in
              let gxx = Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Fixed sg m in
              let agree =
                match (spec, gxx) with
                | Spec.Undeclared, Baselines.Gxx.Undeclared -> true
                | Spec.Resolved p, Baselines.Gxx.Resolved s ->
                  Path.ldc p = Sgraph.ldc sg s
                | Spec.Ambiguous _, Baselines.Gxx.Ambiguous -> true
                | _ -> false
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s::%s" tag (G.name g c) m)
                true agree)
            (G.member_names g)))
    figures

let test_gxx_self_declared () =
  (* If the queried class itself declares m the scan resolves to the
     complete object without traversal. *)
  let g = Hiergen.Figures.fig3 () in
  let sg = Sgraph.build g (G.find g "G") in
  match Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Buggy sg "foo" with
  | Baselines.Gxx.Resolved s ->
    Alcotest.(check string) "self" "G" (G.name g (Sgraph.ldc sg s))
  | _ -> Alcotest.fail "should resolve to the class itself"

let test_topo_shortcut () =
  (* On unambiguous lookups the shortcut agrees with the real algorithm;
     on fig1's ambiguous lookup it silently returns something. *)
  let g = Hiergen.Figures.fig2 () in
  let t = Baselines.Topo_lookup.prepare g in
  Alcotest.(check (option string)) "fig2 E::m -> D" (Some "D")
    (Option.map (G.name g) (Baselines.Topo_lookup.resolve t (G.find g "E") "m"));
  Alcotest.(check (option string)) "fig2 C::m -> A" (Some "A")
    (Option.map (G.name g) (Baselines.Topo_lookup.resolve t (G.find g "C") "m"));
  Alcotest.(check (option string)) "absent member" None
    (Option.map (G.name g)
       (Baselines.Topo_lookup.resolve t (G.find g "E") "zzz"));
  let g1 = Hiergen.Figures.fig1 () in
  let t1 = Baselines.Topo_lookup.prepare g1 in
  (* Ambiguous lookup: the shortcut picks D silently — documented unsound
     behaviour we rely on in the matchup bench. *)
  Alcotest.(check (option string)) "fig1 E::m picks D (unsound)" (Some "D")
    (Option.map (G.name g1)
       (Baselines.Topo_lookup.resolve t1 (G.find g1 "E") "m"))

let test_topo_figures () =
  (* Figure-based units for the shortcut's two faces.  fig9: the
     maximum-topological-number declarer among E's ancestors is C, which
     happens to be the paper's (correct) answer.  fig3: H::foo agrees
     with the spec (G), but H::bar — ambiguous under C++ — silently
     resolves to G too. *)
  let g9 = Hiergen.Figures.fig9 () in
  let t9 = Baselines.Topo_lookup.prepare g9 in
  Alcotest.(check (option string)) "fig9 E::m -> C" (Some "C")
    (Option.map (G.name g9)
       (Baselines.Topo_lookup.resolve t9 (G.find g9 "E") "m"));
  let g3 = Hiergen.Figures.fig3 () in
  let t3 = Baselines.Topo_lookup.prepare g3 in
  Alcotest.(check (option string)) "fig3 H::foo -> G" (Some "G")
    (Option.map (G.name g3)
       (Baselines.Topo_lookup.resolve t3 (G.find g3 "H") "foo"));
  Alcotest.(check (option string)) "fig3 H::bar -> G (unsound)" (Some "G")
    (Option.map (G.name g3)
       (Baselines.Topo_lookup.resolve t3 (G.find g3 "H") "bar"));
  (* self-declaration dominates any base *)
  Alcotest.(check (option string)) "fig3 G::foo -> G" (Some "G")
    (Option.map (G.name g3)
       (Baselines.Topo_lookup.resolve t3 (G.find g3 "G") "foo"))

let suite =
  [ Alcotest.test_case "naive = spec on figures" `Quick test_naive_matches_spec;
    Alcotest.test_case "figure 4 propagation/kills" `Quick
      test_naive_propagation_fig4;
    Alcotest.test_case "figure 5 blue propagation" `Quick
      test_naive_propagation_fig5;
    Alcotest.test_case "RF lookup = spec on figures" `Quick
      test_rf_matches_spec;
    Alcotest.test_case "g++ bug on figure 9" `Quick test_gxx_bug_fig9;
    Alcotest.test_case "g++ correct elsewhere" `Quick
      test_gxx_correct_on_simple;
    Alcotest.test_case "fixed g++ = spec" `Quick
      test_gxx_fixed_matches_spec_everywhere;
    Alcotest.test_case "g++ self-declared shortcut" `Quick
      test_gxx_self_declared;
    Alcotest.test_case "topological shortcut" `Quick test_topo_shortcut;
    Alcotest.test_case "topological shortcut on figures" `Quick
      test_topo_figures ]
