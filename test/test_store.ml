(* Tests for the durable store: the binary substrate (CRC-32, writer /
   reader, graph and verdict codecs), snapshot container integrity, WAL
   framing and torn-tail handling, store-level recovery, and the
   QCheck crash-recovery property — any mutation sequence, any kill
   point, the recovered session answers verdict-for-verdict like a
   from-scratch spec oracle. *)

module G = Chg.Graph
module B = Chg.Binary
module Path = Subobject.Path
module Spec = Subobject.Spec
module Engine = Lookup_core.Engine
module A = Lookup_core.Abstraction
module Vio = Lookup_core.Verdict_io
module Packed = Lookup_core.Packed
module Session = Service.Session

let graph () = Hiergen.Figures.fig3 ()

(* ---- scratch directories ------------------------------------------- *)

let temp_dir () =
  let f = Filename.temp_file "cxxstore" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let file_size path = (Unix.stat path).Unix.st_size

let corrupt_byte path off =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b)

(* ---- CRC-32 -------------------------------------------------------- *)

let test_crc32 () =
  Alcotest.(check int32) "check vector (gzip/PNG polynomial)" 0xCBF43926l
    (B.crc32_string "123456789");
  Alcotest.(check int32) "empty" 0l (B.crc32_string "");
  (* incremental over two halves = one shot *)
  let s = "the quick brown fox jumps over the lazy dog" in
  let half = String.length s / 2 in
  let inc =
    B.crc32 ~crc:(B.crc32 s ~pos:0 ~len:half) s ~pos:half
      ~len:(String.length s - half)
  in
  Alcotest.(check int32) "incremental" (B.crc32_string s) inc

(* ---- writer / reader ----------------------------------------------- *)

let test_writer_reader_roundtrip () =
  let w = B.Writer.create () in
  B.Writer.u8 w 0;
  B.Writer.u8 w 255;
  B.Writer.u32 w 0;
  B.Writer.u32 w 0xFFFF_FFFF;
  B.Writer.i64 w min_int;
  B.Writer.i64 w max_int;
  B.Writer.i64 w (-42);
  B.Writer.bool w true;
  B.Writer.bool w false;
  B.Writer.string w "";
  B.Writer.string w "héllo\x00wörld";
  B.Writer.raw w "tail";
  let r = B.Reader.of_string (B.Writer.contents w) in
  Alcotest.(check int) "u8 lo" 0 (B.Reader.u8 r);
  Alcotest.(check int) "u8 hi" 255 (B.Reader.u8 r);
  Alcotest.(check int) "u32 lo" 0 (B.Reader.u32 r);
  Alcotest.(check int) "u32 hi" 0xFFFF_FFFF (B.Reader.u32 r);
  Alcotest.(check int) "i64 min" min_int (B.Reader.i64 r);
  Alcotest.(check int) "i64 max" max_int (B.Reader.i64 r);
  Alcotest.(check int) "i64 neg" (-42) (B.Reader.i64 r);
  Alcotest.(check bool) "bool t" true (B.Reader.bool r);
  Alcotest.(check bool) "bool f" false (B.Reader.bool r);
  Alcotest.(check string) "empty string" "" (B.Reader.string r);
  Alcotest.(check string) "string" "héllo\x00wörld" (B.Reader.string r);
  Alcotest.(check string) "raw" "tail" (B.Reader.raw r 4);
  Alcotest.(check bool) "consumed" true (B.Reader.at_end r)

let test_reader_truncation () =
  let w = B.Writer.create () in
  B.Writer.string w "hello";
  let s = B.Writer.contents w in
  (* every strict prefix must fail loudly, never return junk *)
  for len = 0 to String.length s - 1 do
    let r = B.Reader.of_string ~len s in
    match B.Reader.string r with
    | _ -> Alcotest.failf "prefix of %d bytes decoded" len
    | exception B.Corrupt _ -> ()
  done

(* ---- graph codec --------------------------------------------------- *)

let graphs_equal ga gb =
  G.num_classes ga = G.num_classes gb
  && G.num_edges ga = G.num_edges gb
  && List.for_all
       (fun c ->
         G.name ga c = G.name gb c
         && G.bases ga c = G.bases gb c
         && G.members ga c = G.members gb c)
       (G.classes ga)

let test_graph_codec_roundtrip () =
  let g = graph () in
  let w = B.Writer.create () in
  B.write_graph w g;
  let g' = B.read_graph (B.Reader.of_string (B.Writer.contents w)) in
  Alcotest.(check bool) "structurally equal" true (graphs_equal g g');
  (* verdicts agree end to end *)
  let e = Engine.build (Chg.Closure.compute g) in
  let e' = Engine.build (Chg.Closure.compute g') in
  G.iter_classes g (fun c ->
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "verdict %s::%s" (G.name g c) m)
            true
            (Engine.lookup e c m = Engine.lookup e' c m))
        (G.member_names g))

let test_graph_codec_rejects_corruption () =
  let w = B.Writer.create () in
  B.write_graph w (graph ());
  let s = B.Writer.contents w in
  (* flip one byte at a time: decode must either raise Corrupt or
     produce some graph — never crash with anything else *)
  let survived = ref 0 in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code s.[i] lxor 0x01));
      match B.read_graph (B.Reader.of_string (Bytes.to_string b)) with
      | _ -> incr survived
      | exception B.Corrupt _ -> ())
    s;
  (* some flips (inside name bytes) legitimately decode; most must not *)
  Alcotest.(check bool) "most corruptions detected" true
    (!survived < String.length s)

(* ---- verdict column codec ------------------------------------------ *)

let test_column_roundtrip () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  List.iter
    (fun m ->
      let e = Engine.build_member cl m in
      let col =
        Array.init (G.num_classes g) (fun c -> Engine.lookup e c m)
      in
      let w = B.Writer.create () in
      Vio.write_column w col;
      let col' =
        Vio.read_column (B.Reader.of_string (B.Writer.contents w))
      in
      Alcotest.(check bool)
        (Printf.sprintf "column of %s round-trips" m)
        true (col = col'))
    (G.member_names g)

let test_column_rejects_huge_count () =
  (* a corrupt count must not trigger a giant allocation *)
  let w = B.Writer.create () in
  B.Writer.u32 w 0xFFFF_FF00;
  let r = B.Reader.of_string (B.Writer.contents w) in
  match Vio.read_column r with
  | _ -> Alcotest.fail "decoded a column from a bare huge count"
  | exception B.Corrupt _ -> ()

let test_packed_column_codec () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  List.iter
    (fun m ->
      let e = Engine.build_member cl m in
      let boxed =
        Array.init (G.num_classes g) (fun c -> Engine.lookup e c m)
      in
      let col = Packed.pack_column boxed in
      let w = B.Writer.create () in
      Packed.write_column w col;
      let col' =
        Packed.read_column (B.Reader.of_string (B.Writer.contents w))
      in
      Alcotest.(check bool)
        (Printf.sprintf "packed column of %s round-trips" m)
        true
        (Packed.column_equal col col');
      Alcotest.(check bool)
        (Printf.sprintf "decoded column of %s unpacks to the boxed one" m)
        true
        (Packed.unpack_column col' = boxed))
    (G.member_names g)

let test_packed_column_codec_rejects_corruption () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  let e = Engine.build_member cl "foo" in
  let col =
    Packed.pack_column
      (Array.init (G.num_classes g) (fun c -> Engine.lookup e c "foo"))
  in
  let w = B.Writer.create () in
  Packed.write_column w col;
  let s = B.Writer.contents w in
  (* flip one byte at a time: read_column must raise Corrupt or decode
     some valid column — never crash, never allocate wildly *)
  let survived = ref 0 in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code s.[i] lxor 0x04));
      match Packed.read_column (B.Reader.of_string (Bytes.to_string b)) with
      | _ -> incr survived
      | exception B.Corrupt _ -> ())
    s;
  Alcotest.(check bool) "most corruptions detected" true
    (!survived < String.length s)

(* ---- snapshots ----------------------------------------------------- *)

let boxed_columns g =
  let cl = Chg.Closure.compute g in
  let e = Engine.build cl in
  List.map
    (fun m ->
      (m, Array.init (G.num_classes g) (fun c -> Engine.lookup e c m)))
    (G.member_names g)

let compiled_columns g =
  List.map (fun (m, col) -> (m, Packed.pack_column col)) (boxed_columns g)

let snap ?(epoch = 3) ?(columns = true) g =
  { Store.Snapshot.s_session = "sess/with weird name";
    s_epoch = epoch;
    s_protocol = Service.Protocol.version;
    s_graph = g;
    s_columns = (if columns then compiled_columns g else []) }

let test_snapshot_roundtrip () =
  let g = graph () in
  let s = snap g in
  match Store.Snapshot.decode (Store.Snapshot.encode s) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok s' ->
    Alcotest.(check string) "session" s.Store.Snapshot.s_session
      s'.Store.Snapshot.s_session;
    Alcotest.(check int) "epoch" s.Store.Snapshot.s_epoch
      s'.Store.Snapshot.s_epoch;
    Alcotest.(check string) "protocol" s.Store.Snapshot.s_protocol
      s'.Store.Snapshot.s_protocol;
    Alcotest.(check bool) "graph" true
      (graphs_equal s.Store.Snapshot.s_graph s'.Store.Snapshot.s_graph);
    Alcotest.(check bool) "columns" true
      (s.Store.Snapshot.s_columns = s'.Store.Snapshot.s_columns)

let test_snapshot_rejects_corruption () =
  let enc = Store.Snapshot.encode (snap (graph ())) in
  (match Store.Snapshot.decode "XXXXXXXX\x01\x00\x00\x00\x00\x00\x00\x00" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bad magic");
  (* flip every byte after the magic: a section CRC must catch each *)
  let epoch = (snap (graph ())).Store.Snapshot.s_epoch in
  String.iteri
    (fun i _ ->
      if i >= 8 then begin
        let b = Bytes.of_string enc in
        Bytes.set b i (Char.chr (Char.code enc.[i] lxor 0x10));
        match Store.Snapshot.decode (Bytes.to_string b) with
        | Error _ -> ()
        | Ok s' ->
          (* a flip in the section count/len fields can reframe the
             container, but never yield a corrupted payload silently *)
          Alcotest.(check int)
            (Printf.sprintf "byte %d: surviving decode is intact" i)
            epoch s'.Store.Snapshot.s_epoch
      end)
    enc

let test_snapshot_reads_legacy_boxed_columns () =
  (* hand-write a version-1 container whose columns use the legacy tag-3
     boxed codec, as pre-packing builds did: decode must accept it and
     pack the columns on load *)
  let g = graph () in
  let section f =
    let w = B.Writer.create () in
    f w;
    B.Writer.contents w
  in
  let crc_int s = Int32.to_int (B.crc32_string s) land 0xffffffff in
  let w = B.Writer.create () in
  B.Writer.raw w "CXLSNAP0";
  B.Writer.u32 w 1;
  let sections =
    [ ( 1,
        section (fun w ->
            B.Writer.string w "legacy";
            B.Writer.i64 w 7;
            B.Writer.string w Service.Protocol.version) );
      (2, section (fun w -> B.write_graph w g));
      ( 3,
        section (fun w ->
            let cols = boxed_columns g in
            B.Writer.u32 w (List.length cols);
            List.iter
              (fun (m, col) ->
                B.Writer.string w m;
                Vio.write_column w col)
              cols) ) ]
  in
  B.Writer.u32 w (List.length sections);
  List.iter
    (fun (tag, payload) ->
      B.Writer.u8 w tag;
      B.Writer.u32 w (String.length payload);
      B.Writer.u32 w (crc_int payload);
      B.Writer.raw w payload)
    sections;
  match Store.Snapshot.decode (B.Writer.contents w) with
  | Error e -> Alcotest.failf "legacy decode failed: %s" e
  | Ok s ->
    Alcotest.(check int) "epoch" 7 s.Store.Snapshot.s_epoch;
    Alcotest.(check bool) "columns arrive packed, verdict-identical" true
      (List.for_all2
         (fun (m, col) (m', col') ->
           m = m' && Packed.column_equal col col')
         s.Store.Snapshot.s_columns (compiled_columns g))

let test_snapshot_file_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "x.snap" in
      let s = snap (graph ()) in
      let bytes = Store.Snapshot.write_file path s in
      Alcotest.(check int) "size reported" bytes (file_size path);
      match Store.Snapshot.read_file path with
      | Ok s' ->
        Alcotest.(check int) "epoch" s.Store.Snapshot.s_epoch
          s'.Store.Snapshot.s_epoch
      | Error e -> Alcotest.failf "read_file failed: %s" e)

(* ---- WAL ----------------------------------------------------------- *)

let mutations =
  [ Store.Mutation.Add_class
      { ac_name = "Z1";
        ac_bases = [ ("H", G.Non_virtual, G.Public) ];
        ac_members = [ G.member "zap" ] };
    Store.Mutation.Add_member { am_class = "B"; am_member = G.member "zip" };
    Store.Mutation.Add_class
      { ac_name = "Z2";
        ac_bases = [ ("Z1", G.Virtual, G.Private) ];
        ac_members = [] } ]

let write_wal ?(file = "wal.log") dir records =
  let path = Filename.concat dir file in
  let w = Store.Wal.open_append ~fsync:Store.Wal.Always path in
  List.iteri (fun i m -> ignore (Store.Wal.append w ~epoch:(i + 1) m)) records;
  Store.Wal.close w;
  path

let test_wal_roundtrip () =
  with_temp_dir (fun dir ->
      let path = write_wal dir mutations in
      let tail = Store.Wal.read_file path in
      Alcotest.(check bool) "not torn" false tail.Store.Wal.tl_torn;
      Alcotest.(check int) "all records" (List.length mutations)
        (List.length tail.Store.Wal.tl_records);
      Alcotest.(check int) "valid prefix is the file" (file_size path)
        tail.Store.Wal.tl_valid_bytes;
      List.iteri
        (fun i (r : Store.Wal.record) ->
          Alcotest.(check int) "epoch" (i + 1) r.Store.Wal.rc_epoch;
          Alcotest.(check bool) "mutation" true
            (r.Store.Wal.rc_mutation = List.nth mutations i))
        tail.Store.Wal.tl_records)

let test_wal_torn_tail () =
  with_temp_dir (fun dir ->
      let path = write_wal dir mutations in
      let full = file_size path in
      let tail0 = Store.Wal.read_file path in
      let boundary = tail0.Store.Wal.tl_valid_bytes in
      Alcotest.(check int) "boundary" full boundary;
      (* cut the final record anywhere: the first two survive, torn *)
      truncate_file path (full - 3);
      let tail = Store.Wal.read_file path in
      Alcotest.(check bool) "torn detected" true tail.Store.Wal.tl_torn;
      Alcotest.(check int) "prefix survives" 2
        (List.length tail.Store.Wal.tl_records);
      (* flip a payload byte of the last record instead: same outcome *)
      let path2 = write_wal ~file:"wal2.log" dir mutations in
      corrupt_byte path2 (file_size path2 - 1);
      let tail2 = Store.Wal.read_file path2 in
      Alcotest.(check bool) "crc catches the flip" true
        tail2.Store.Wal.tl_torn;
      Alcotest.(check int) "prefix survives the flip" 2
        (List.length tail2.Store.Wal.tl_records);
      (* open_append truncates the torn tail and appends cleanly *)
      let w = Store.Wal.open_append path2 in
      ignore (Store.Wal.append w ~epoch:3 (List.nth mutations 2));
      Store.Wal.sync w;
      Store.Wal.close w;
      let tail3 = Store.Wal.read_file path2 in
      Alcotest.(check bool) "clean after reopen" false
        tail3.Store.Wal.tl_torn;
      Alcotest.(check int) "records" 3
        (List.length tail3.Store.Wal.tl_records))

let test_wal_garbage_and_reset () =
  with_temp_dir (fun dir ->
      (* not even a magic *)
      let junk = Filename.concat dir "junk.log" in
      Out_channel.with_open_bin junk (fun oc ->
          Out_channel.output_string oc "not a wal");
      let t = Store.Wal.read_file junk in
      Alcotest.(check bool) "junk torn" true t.Store.Wal.tl_torn;
      Alcotest.(check int) "junk empty" 0 (List.length t.Store.Wal.tl_records);
      (* missing file: empty, untorn *)
      let t = Store.Wal.read_file (Filename.concat dir "absent.log") in
      Alcotest.(check bool) "missing untorn" false t.Store.Wal.tl_torn;
      (* reset drops everything back to the magic *)
      let path = write_wal dir mutations in
      let w = Store.Wal.open_append path in
      Store.Wal.reset w;
      ignore (Store.Wal.append w ~epoch:9 (List.hd mutations));
      Store.Wal.close w;
      let t = Store.Wal.read_file path in
      Alcotest.(check int) "one record after reset" 1
        (List.length t.Store.Wal.tl_records);
      Alcotest.(check int) "its epoch" 9
        (List.hd t.Store.Wal.tl_records).Store.Wal.rc_epoch)

(* ---- store-level recovery ------------------------------------------ *)

let test_store_recover_cycle () =
  with_temp_dir (fun dir ->
      let st = Store.open_dir dir in
      Alcotest.(check (list string)) "empty store" [] (Store.sessions st);
      (match Store.recover st "nope" with
      | Ok None -> ()
      | _ -> Alcotest.fail "unknown session should recover to None");
      let g = graph () in
      ignore (Store.write_snapshot st (snap ~epoch:0 ~columns:false g));
      List.iteri
        (fun i m -> Store.log_mutation st ~session:"sess/with weird name"
            ~epoch:(i + 1) m)
        mutations;
      Store.close st;
      (* fresh handle, as after a restart *)
      let st = Store.open_dir dir in
      Alcotest.(check (list string)) "session listed"
        [ "sess/with weird name" ] (Store.sessions st);
      (match Store.recover st "sess/with weird name" with
      | Ok (Some rv) ->
        Alcotest.(check int) "snapshot epoch" 0
          rv.Store.rv_snapshot.Store.Snapshot.s_epoch;
        Alcotest.(check int) "replayed" 3
          (List.length rv.Store.rv_replayed);
        Alcotest.(check int) "recovered epoch" 3 (Store.recovered_epoch rv);
        Alcotest.(check bool) "untorn" false rv.Store.rv_torn
      | Ok None -> Alcotest.fail "nothing recovered"
      | Error e -> Alcotest.failf "recover failed: %s" e);
      (* compaction: snapshot at the recovered epoch resets the WAL *)
      ignore (Store.write_snapshot st (snap ~epoch:3 ~columns:false g));
      Alcotest.(check int) "wal empty after compaction" 0
        (List.length
           (Store.Wal.read_file
              (Filename.concat
                 (Filename.concat dir "sess%2Fwith%20weird%20name")
                 "wal.log"))
             .Store.Wal.tl_records);
      (match Store.recover st "sess/with weird name" with
      | Ok (Some rv) ->
        Alcotest.(check int) "compacted epoch" 3
          rv.Store.rv_snapshot.Store.Snapshot.s_epoch;
        Alcotest.(check int) "nothing to replay" 0
          (List.length rv.Store.rv_replayed)
      | _ -> Alcotest.fail "recover after compaction failed");
      Store.close st)

let test_store_stale_snapshot_fallback () =
  with_temp_dir (fun dir ->
      let st = Store.open_dir dir in
      let g = graph () in
      ignore (Store.write_snapshot st (snap ~epoch:0 ~columns:false g));
      List.iteri
        (fun i m -> Store.log_mutation st ~session:"sess/with weird name"
            ~epoch:(i + 1) m)
        mutations;
      (* simulate a crash after the compaction snapshot hit the disk but
         before the WAL reset: write the file directly *)
      let sess_dir = Filename.concat dir "sess%2Fwith%20weird%20name" in
      let newer = Filename.concat sess_dir "snap-0000000003.snap" in
      ignore (Store.Snapshot.write_file newer (snap ~epoch:3 ~columns:false g));
      Store.close st;
      let st = Store.open_dir dir in
      (* undamaged: the newer snapshot wins and the WAL records at or
         below its epoch are skipped, not replayed twice *)
      (match Store.recover st "sess/with weird name" with
      | Ok (Some rv) ->
        Alcotest.(check int) "newest snapshot wins" 3
          rv.Store.rv_snapshot.Store.Snapshot.s_epoch;
        Alcotest.(check int) "stale records skipped" 0
          (List.length rv.Store.rv_replayed)
      | _ -> Alcotest.fail "recover failed");
      (* now damage the newer snapshot: recovery falls back to epoch 0
         and the WAL still carries every mutation *)
      corrupt_byte newer (file_size newer - 2);
      (match Store.recover st "sess/with weird name" with
      | Ok (Some rv) ->
        Alcotest.(check int) "fallback snapshot" 0
          rv.Store.rv_snapshot.Store.Snapshot.s_epoch;
        Alcotest.(check int) "stale files counted" 1
          rv.Store.rv_stale_snapshots;
        Alcotest.(check int) "wal replays everything" 3
          (List.length rv.Store.rv_replayed)
      | _ -> Alcotest.fail "fallback recover failed");
      (* every snapshot damaged: recovery errors, it does not invent *)
      List.iter
        (fun f ->
          if Filename.check_suffix f ".snap" then
            corrupt_byte (Filename.concat sess_dir f) 12)
        (Array.to_list (Sys.readdir sess_dir));
      (match Store.recover st "sess/with weird name" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "recovered from all-damaged snapshots");
      Store.close st)

(* the acceptance case: a torn final WAL record is detected, skipped,
   and the surviving prefix recovers *)
let test_store_torn_final_record () =
  with_temp_dir (fun dir ->
      let st = Store.open_dir dir in
      let g = graph () in
      ignore (Store.write_snapshot st (snap ~epoch:0 ~columns:false g));
      List.iteri
        (fun i m -> Store.log_mutation st ~session:"sess/with weird name"
            ~epoch:(i + 1) m)
        mutations;
      Store.close st;
      let wal_path =
        Filename.concat
          (Filename.concat dir "sess%2Fwith%20weird%20name")
          "wal.log"
      in
      truncate_file wal_path (file_size wal_path - 1);
      let st = Store.open_dir dir in
      (match Store.recover st "sess/with weird name" with
      | Ok (Some rv) ->
        Alcotest.(check bool) "torn reported" true rv.Store.rv_torn;
        Alcotest.(check int) "prefix replayed" 2
          (List.length rv.Store.rv_replayed);
        Alcotest.(check int) "epoch stops at the tear" 2
          (Store.recovered_epoch rv)
      | _ -> Alcotest.fail "torn recover failed");
      Store.close st)

(* ---- QCheck: crash recovery against the spec oracle ---------------- *)

let qc_members = [ "m"; "n"; "p" ]

(* split a random DAG: the first half opens the session, the rest
   arrives as add_class mutations (ids are topological, so every base of
   a later class is already present), interleaved with add_member
   mutations targeting earlier classes *)
let split_instance (i : Hiergen.Families.instance) =
  let g = i.Hiergen.Families.graph in
  let n = G.num_classes g in
  let k = max 1 ((n + 1) / 2) in
  let b = G.create_builder () in
  let bases_of c =
    List.map
      (fun (bb : G.base) -> (G.name g bb.G.b_class, bb.G.b_kind, bb.G.b_access))
      (G.bases g c)
  in
  for c = 0 to k - 1 do
    ignore (G.add_class b (G.name g c) ~bases:(bases_of c) ~members:(G.members g c))
  done;
  let base = G.freeze b in
  let muts = ref [] in
  for c = k to n - 1 do
    muts :=
      Store.Mutation.Add_class
        { ac_name = G.name g c;
          ac_bases = bases_of c;
          ac_members = G.members g c }
      :: !muts;
    (* deterministic extra member mutation on an earlier class *)
    muts :=
      Store.Mutation.Add_member
        { am_class = G.name g (c mod k);
          am_member = G.member (Printf.sprintf "w%d" c) }
      :: !muts
  done;
  (base, List.rev !muts)

(* replay the surviving mutations into a fresh builder: the from-scratch
   oracle graph a correct recovery must be equivalent to *)
let oracle_graph base muts =
  let b = G.create_builder () in
  G.iter_classes base (fun c ->
      ignore
        (G.add_class b (G.name base c)
           ~bases:
             (List.map
                (fun (bb : G.base) ->
                  (G.name base bb.G.b_class, bb.G.b_kind, bb.G.b_access))
                (G.bases base c))
           ~members:(G.members base c)));
  List.iter (fun m -> Store.Mutation.apply b m) muts;
  G.freeze b

let session_matches_oracle s og =
  let gs = Session.graph s in
  G.num_classes gs = G.num_classes og
  && List.for_all
       (fun c ->
         let cls = G.name og c in
         List.for_all
           (fun m ->
             match Session.lookup s cls m with
             | Error _ -> false
             | Ok (v, _) ->
               (match (Spec.lookup_static og c m, v) with
               | Spec.Resolved p, Some (Engine.Red r) ->
                 G.name og (Path.ldc p) = G.name gs r.A.r_ldc
               | Spec.Ambiguous _, Some (Engine.Blue _) -> true
               | Spec.Undeclared, None -> true
               | _ -> false))
           (G.member_names og))
       (G.classes og)

let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members:qc_members ~seed)
      (tup5 (int_range 2 12) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let recovery_case_gen =
  (* the kill point is a per-mille of the WAL body length, so it lands
     anywhere from "right after the magic" to "nothing lost" *)
  QCheck.Gen.(tup2 instance_gen (int_range 0 1000))

let recovery_case_arb =
  QCheck.make recovery_case_gen ~print:(fun (i, kill) ->
      Printf.sprintf "kill at %d/1000 of\n%s\n%s" kill
        i.Hiergen.Families.description
        (Format.asprintf "%a" G.pp i.Hiergen.Families.graph))

let prop_crash_recovery =
  QCheck.Test.make ~count:60
    ~name:"recovery after any kill point = spec oracle on the prefix"
    recovery_case_arb (fun (inst, kill) ->
      let base, muts = split_instance inst in
      with_temp_dir (fun dir ->
          let session = "q" in
          let st = Store.open_dir dir in
          (* the durable history: epoch-0 snapshot with a couple of
             compiled columns, then the whole mutation log *)
          ignore
            (Store.write_snapshot st
               { Store.Snapshot.s_session = session;
                 s_epoch = 0;
                 s_protocol = Service.Protocol.version;
                 s_graph = base;
                 s_columns = compiled_columns base });
          List.iteri
            (fun i m -> Store.log_mutation st ~session ~epoch:(i + 1) m)
            muts;
          Store.close st;
          (* the crash: truncate the WAL at an arbitrary byte *)
          let wal_path = Filename.concat (Filename.concat dir "q") "wal.log" in
          let size = file_size wal_path in
          let magic = 8 in
          truncate_file wal_path
            (magic + (size - magic) * kill / 1000);
          (* recover exactly like the service does *)
          let st = Store.open_dir dir in
          let result =
            match Store.recover st session with
            | Error _ | Ok None -> false
            | Ok (Some rv) ->
              let snapshot = rv.Store.rv_snapshot in
              let s =
                Session.restore ~name:session
                  ~epoch:snapshot.Store.Snapshot.s_epoch
                  ~columns:snapshot.Store.Snapshot.s_columns
                  snapshot.Store.Snapshot.s_graph
              in
              let survivors =
                List.map
                  (fun (r : Store.Wal.record) -> r.Store.Wal.rc_mutation)
                  rv.Store.rv_replayed
              in
              List.iter
                (function
                  | Store.Mutation.Add_class
                      { ac_name; ac_bases; ac_members } ->
                    ignore
                      (Session.add_class s ~cls:ac_name ~bases:ac_bases
                         ~members:ac_members)
                  | Store.Mutation.Add_member { am_class; am_member } ->
                    ignore (Session.add_member s ~cls:am_class am_member))
                survivors;
              (* the tear never invents records: survivors are a prefix *)
              List.length survivors <= List.length muts
              && survivors
                 = List.filteri
                     (fun i _ -> i < List.length survivors)
                     muts
              && Session.epoch s = List.length survivors
              && session_matches_oracle s (oracle_graph base survivors)
          in
          Store.close st;
          result))

let suite =
  [ Alcotest.test_case "crc32 vectors" `Quick test_crc32;
    Alcotest.test_case "writer/reader round-trip" `Quick
      test_writer_reader_roundtrip;
    Alcotest.test_case "reader rejects truncation" `Quick
      test_reader_truncation;
    Alcotest.test_case "graph codec round-trip" `Quick
      test_graph_codec_roundtrip;
    Alcotest.test_case "graph codec vs corruption" `Quick
      test_graph_codec_rejects_corruption;
    Alcotest.test_case "verdict column round-trip" `Quick
      test_column_roundtrip;
    Alcotest.test_case "packed column codec round-trip" `Quick
      test_packed_column_codec;
    Alcotest.test_case "packed column codec vs corruption" `Quick
      test_packed_column_codec_rejects_corruption;
    Alcotest.test_case "snapshot reads legacy boxed columns" `Quick
      test_snapshot_reads_legacy_boxed_columns;
    Alcotest.test_case "column rejects huge count" `Quick
      test_column_rejects_huge_count;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot rejects corruption" `Quick
      test_snapshot_rejects_corruption;
    Alcotest.test_case "snapshot file round-trip" `Quick
      test_snapshot_file_roundtrip;
    Alcotest.test_case "wal round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal garbage and reset" `Quick
      test_wal_garbage_and_reset;
    Alcotest.test_case "store recover cycle" `Quick test_store_recover_cycle;
    Alcotest.test_case "store stale-snapshot fallback" `Quick
      test_store_stale_snapshot_fallback;
    Alcotest.test_case "store torn final record" `Quick
      test_store_torn_final_record ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_crash_recovery ]
