#!/bin/sh
# Zero-copy crash-recovery smoke test: serve with a durable store and a
# tiny compaction threshold (so mutations leave real snapshots on
# disk), SIGKILL the server, then restart it three ways — mmap-verify
# (the default), mmap-fast, and decode — and require byte-identical
# recovered transcripts from all three, with the store's own counter
# proving the zero-copy path actually engaged.  Finally truncate the
# newest snapshot: recovery must fall back to the previous one and
# answer that epoch's verdicts, never crash.  Run from the repository
# root (make verify does).
set -eu

BIN=${CXXLOOKUP:-_build/default/bin/cxxlookup.exe}
SMOKE_DIR=$(dirname "$0")
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

STORE="$WORK/store.d"
FIFO="$WORK/in.fifo"
mkfifo "$FIFO"

# Phase 1: open and mutate twice with --compact-bytes 1, so every
# mutation compacts the WAL into a fresh snapshot — the store ends up
# holding snapshots for epochs 1 and 2 and an empty WAL, which is
# exactly the shape the mmap restore path serves.  Then SIGKILL.
"$BIN" serve --jobs 1 --store "$STORE" --fsync always --compact-bytes 1 \
  <"$FIFO" >"$WORK/phase1.out" 2>/dev/null &
SERVER=$!
exec 3>"$FIFO"
cat "$SMOKE_DIR/crash_phase1.jsonl" >&3

EXPECT=$(wc -l <"$SMOKE_DIR/crash_phase1.jsonl")
i=0
while [ "$(wc -l <"$WORK/phase1.out")" -lt "$EXPECT" ]; do
  i=$((i + 1))
  if [ "$i" -gt 200 ]; then
    echo "mmap_crash: phase 1 timed out waiting for responses" >&2
    kill -9 "$SERVER" 2>/dev/null || true
    exit 1
  fi
  sleep 0.05
done
kill -9 "$SERVER"
exec 3>&-
wait "$SERVER" 2>/dev/null || true

# Phase 2, three restore modes over the same store.  Each fresh server
# must recover epoch 2 with nothing to replay (the WAL was compacted
# away) and answer the canned transcript identically.
recover_with() {
  mode=$1
  "$BIN" serve --jobs 1 --store "$STORE" --mmap-restore "$mode" \
    --metrics-file "$WORK/$mode.prom" \
    <"$SMOKE_DIR/crash_phase2.jsonl" \
    >"$WORK/$mode.out" 2>"$WORK/$mode.log"
  grep -q 'recovered session "crash": epoch 2, 0 replayed' "$WORK/$mode.log" || {
    echo "mmap_crash: $mode recovery line missing or wrong:" >&2
    cat "$WORK/$mode.log" >&2
    exit 1
  }
}

recover_with verify
recover_with fast
recover_with off
# The golden comes from the WAL-replay recovery (2 mutations replayed);
# here compaction consumed the WAL, so the replayed-mutation counter is
# legitimately 0 — normalize it, everything else must match exactly.
sed 's/"mutations":[0-9]*/"mutations":N/' "$WORK/verify.out" \
  >"$WORK/verify.norm"
sed 's/"mutations":[0-9]*/"mutations":N/' "$SMOKE_DIR/crash_golden.jsonl" \
  | diff "$WORK/verify.norm" -
diff "$WORK/fast.out" "$WORK/verify.out"
diff "$WORK/off.out" "$WORK/verify.out"

# The counter is the proof the modes differ under the identical
# output: both mmap modes restored zero-copy, decode mode never did.
grep -q 'cxxlookup_store_mmap_restores_total 1' "$WORK/verify.prom"
grep -q 'cxxlookup_store_mmap_restores_total 1' "$WORK/fast.prom"
grep -q 'cxxlookup_store_mmap_restores_total 0' "$WORK/off.prom"

# Damage: truncate the newest snapshot to half its size.  Neither the
# mapping path nor the decode path can accept it, so recovery must
# fall back to the epoch-1 snapshot — the session loses the epoch-2
# mutation (D::m), and E::m resolves to C again, as it did at epoch 1.
NEWEST="$STORE/crash/$(ls "$STORE/crash" | grep '^snap-' | sort | tail -1)"
SIZE=$(wc -c <"$NEWEST")
head -c $((SIZE / 2)) "$NEWEST" >"$WORK/half" && mv "$WORK/half" "$NEWEST"

"$BIN" serve --jobs 1 --store "$STORE" <<'EOF' >"$WORK/fallback.out" 2>"$WORK/fallback.log"
{"id":1,"op":"lookup","session":"crash","class":"E","member":"m"}
{"id":2,"op":"lookup","session":"crash","class":"F","member":"n"}
EOF

grep -q 'recovered session "crash": epoch 1, 0 replayed' "$WORK/fallback.log" || {
  echo "mmap_crash: fallback recovery line missing or wrong:" >&2
  cat "$WORK/fallback.log" >&2
  exit 1
}
grep -q '"id":1,"ok":true.*"resolves_to":"C"' "$WORK/fallback.out"
grep -q '"id":2,"ok":true.*"resolves_to":"F"' "$WORK/fallback.out"

echo "mmap_crash: OK"
