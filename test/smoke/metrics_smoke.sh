#!/bin/sh
# Metrics smoke test: drive one serve process over a fifo with
# --metrics-file rewriting on every response, capture two scrapes of
# the same process, and validate both with the pure-OCaml exposition
# checker — format on each scrape, counter monotonicity across them.
# Run from the repository root (make metrics-smoke does).
set -eu

BIN=${CXXLOOKUP:-_build/default/bin/cxxlookup.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FIFO="$WORK/in.fifo"
PROM="$WORK/node.prom"
mkfifo "$FIFO"

# --metrics-interval 0: rewrite the textfile after every response, so
# each acknowledged request gives a fresh consistent scrape.
"$BIN" serve --jobs 1 --metrics-file "$PROM" --metrics-interval 0 \
  <"$FIFO" >"$WORK/out.jsonl" 2>/dev/null &
SERVER=$!
exec 3>"$FIFO"

await_lines() {
  i=0
  while [ "$(wc -l <"$WORK/out.jsonl")" -lt "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
      echo "metrics_smoke: timed out waiting for $1 responses" >&2
      kill -9 "$SERVER" 2>/dev/null || true
      exit 1
    fi
    sleep 0.05
  done
}

printf '%s\n' \
  '{"id":0,"op":"open","session":"s","source":"struct A { int m; }; struct B : A {};"}' \
  '{"id":1,"op":"lookup","session":"s","class":"B","member":"m"}' >&3
await_lines 2
cp "$PROM" "$WORK/scrape1.prom"

# The trailing stats request guarantees the rewrite for the bogus verb
# has landed before the scrape is copied (the textfile is rewritten
# after each response, concurrently with our read of the output line).
printf '%s\n' \
  '{"id":2,"op":"lookup","session":"s","class":"A","member":"m"}' \
  '{"id":3,"op":"bogus"}' \
  '{"id":4,"op":"stats"}' >&3
await_lines 5
cp "$PROM" "$WORK/scrape2.prom"

exec 3>&-
wait "$SERVER"

# Each scrape must be well-formed (HELP/TYPE placement, label syntax,
# cumulative histogram buckets) ...
"$BIN" check-metrics "$WORK/scrape1.prom" >/dev/null
# ... and counters must only ever move forward within one process.
"$BIN" check-metrics --prev "$WORK/scrape1.prom" "$WORK/scrape2.prom" \
  >/dev/null

# The series dashboards would alert on are present with the traffic we
# just sent: 2 lookups, 1 error (the bogus verb), a labelled session.
grep -q 'cxxlookup_server_requests_total{verb="lookup"} 2' "$WORK/scrape2.prom"
grep -q 'cxxlookup_server_errors_total{code="unknown_op"} 1' "$WORK/scrape2.prom"
grep -q 'cxxlookup_session_lookups_total{session="s"} 2' "$WORK/scrape2.prom"
grep -q 'cxxlookup_server_request_duration_ns_bucket' "$WORK/scrape2.prom"

echo "metrics_smoke: OK"
