#!/bin/sh
# Networked-server smoke test: one serve process on an ephemeral TCP
# port must (1) answer the canned six-verb transcript byte-identically
# to stdin mode, (2) survive a loadgen burst, and (3) expose the
# cxxlookup_server_… series across two scrapes that pass the exposition
# checker's format and monotonicity gates.  Run from the repository
# root (make verify does).
set -eu

BIN=${CXXLOOKUP:-_build/default/bin/cxxlookup.exe}
WORK=$(mktemp -d)
SERVER=
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

PROM="$WORK/node.prom"

# Port 0: the kernel picks; the resolved port is announced on stderr.
"$BIN" serve --listen 127.0.0.1:0 --jobs 1 --workers 1 \
  --metrics-file "$PROM" --metrics-interval 1 \
  2>"$WORK/serve.err" &
SERVER=$!

await() {
  i=0
  until "$@"; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
      echo "serve_tcp: timed out waiting for: $*" >&2
      exit 1
    fi
    sleep 0.05
  done
}

await grep -q 'listening on' "$WORK/serve.err"
PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/serve.err")
[ -n "$PORT" ] || { echo "serve_tcp: could not parse port" >&2; exit 1; }

# The golden transcript over TCP must be byte-identical to stdin mode.
# The transcript deliberately contains error responses (unknown lint
# rule, lookup on a closed session), so the client exits non-zero —
# the diff against the golden is the actual gate.
"$BIN" client --connect "127.0.0.1:$PORT" --pipeline \
  <test/smoke/serve_input.jsonl >"$WORK/tcp.jsonl" || true
diff "$WORK/tcp.jsonl" test/smoke/serve_golden.jsonl

# First scrape: the collector thread rewrites the textfile on a 1 s
# interval, so one exists shortly after the transcript lands.
await test -s "$PROM"
cp "$PROM" "$WORK/scrape1.prom"

# A short open-loop burst; every request must be answered in-band
# (no overload at this rate, no connection drops).
"$BIN" loadgen --connect "127.0.0.1:$PORT" examples/fig9.cpp \
  --conns 2 --qps 200 --duration 0.5 --warmup 1 --json \
  >"$WORK/loadgen.json"
grep -q '"errors":[[:space:]]*0' "$WORK/loadgen.json"
if grep -q '"answered":[[:space:]]*0[,}]' "$WORK/loadgen.json"; then
  echo "serve_tcp: loadgen got no responses" >&2
  exit 1
fi

# Second scrape, strictly after the burst's rewrite.
sleep 1.2
cp "$PROM" "$WORK/scrape2.prom"

# Each scrape well-formed; counters only ever move forward.
"$BIN" check-metrics "$WORK/scrape1.prom" >/dev/null
"$BIN" check-metrics --prev "$WORK/scrape1.prom" "$WORK/scrape2.prom" \
  >/dev/null

# The server-specific series are present: connections were accepted and
# closed, nothing was rejected at this rate.
grep -q 'cxxlookup_server_connections_accepted_total [1-9]' "$WORK/scrape2.prom"
grep -q 'cxxlookup_server_connections_closed_total [1-9]' "$WORK/scrape2.prom"
grep -q 'cxxlookup_server_overloaded_total 0' "$WORK/scrape2.prom"

# Graceful shutdown: SIGTERM must tear down cleanly with exit 0.
kill -TERM "$SERVER"
if ! wait "$SERVER"; then
  echo "serve_tcp: server exited non-zero on SIGTERM" >&2
  exit 1
fi
SERVER=

echo "serve_tcp: OK"
