#!/bin/sh
# Crash-recovery smoke test: serve with a durable store, SIGKILL the
# server after it has acknowledged a mutated session, restart it over
# the same store, and diff the replayed lookups against the golden
# transcript.  Run from the repository root (make verify does).
set -eu

BIN=${CXXLOOKUP:-_build/default/bin/cxxlookup.exe}
SMOKE_DIR=$(dirname "$0")
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

STORE="$WORK/store.d"
FIFO="$WORK/in.fifo"
mkfifo "$FIFO"

# Phase 1: open a session and mutate it twice, keeping stdin open so the
# server cannot exit cleanly.  --fsync always makes every WAL record
# durable the moment its response is written.
"$BIN" serve --jobs 1 --store "$STORE" --fsync always \
  <"$FIFO" >"$WORK/phase1.out" 2>/dev/null &
SERVER=$!
exec 3>"$FIFO"
cat "$SMOKE_DIR/crash_phase1.jsonl" >&3

# Wait for every phase-1 request to be acknowledged, then pull the plug:
# no close verb, no orderly shutdown, just SIGKILL.
EXPECT=$(wc -l <"$SMOKE_DIR/crash_phase1.jsonl")
i=0
while [ "$(wc -l <"$WORK/phase1.out")" -lt "$EXPECT" ]; do
  i=$((i + 1))
  if [ "$i" -gt 200 ]; then
    echo "crash_recovery: phase 1 timed out waiting for responses" >&2
    kill -9 "$SERVER" 2>/dev/null || true
    exit 1
  fi
  sleep 0.05
done
kill -9 "$SERVER"
exec 3>&-
wait "$SERVER" 2>/dev/null || true

# Phase 2: a fresh server over the same store must recover the session
# (snapshot + WAL replay) and answer exactly like an uninterrupted one.
"$BIN" serve --jobs 1 --store "$STORE" \
  <"$SMOKE_DIR/crash_phase2.jsonl" \
  >"$WORK/phase2.out" 2>"$WORK/recover.log"

grep -q 'recovered session "crash": epoch 2, 2 replayed' "$WORK/recover.log" || {
  echo "crash_recovery: recovery line missing or wrong:" >&2
  cat "$WORK/recover.log" >&2
  exit 1
}
diff "$WORK/phase2.out" "$SMOKE_DIR/crash_golden.jsonl"
echo "crash_recovery: OK"
