#!/bin/sh
# Flight-recorder smoke test: serve over a fifo, send a few requests,
# then SIGUSR1 the server and check that it dumps the ring of recent
# requests to stderr — the live-debugging path for a wedged server.
# Run from the repository root (make metrics-smoke does).
set -eu

BIN=${CXXLOOKUP:-_build/default/bin/cxxlookup.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FIFO="$WORK/in.fifo"
mkfifo "$FIFO"

"$BIN" serve --jobs 1 <"$FIFO" >"$WORK/out.jsonl" 2>"$WORK/err.log" &
SERVER=$!
exec 3>"$FIFO"

printf '%s\n' \
  '{"id":0,"op":"open","session":"s","source":"struct A { int m; };"}' \
  '{"id":1,"op":"lookup","session":"s","class":"A","member":"m"}' \
  '{"id":2,"op":"bogus"}' >&3

i=0
while [ "$(wc -l <"$WORK/out.jsonl")" -lt 3 ]; do
  i=$((i + 1))
  if [ "$i" -gt 200 ]; then
    echo "flight_recorder: timed out waiting for responses" >&2
    kill -9 "$SERVER" 2>/dev/null || true
    exit 1
  fi
  sleep 0.05
done

kill -USR1 "$SERVER"
i=0
while ! grep -q 'end flight recorder' "$WORK/err.log" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 200 ]; then
    echo "flight_recorder: timed out waiting for the SIGUSR1 dump" >&2
    kill -9 "$SERVER" 2>/dev/null || true
    exit 1
  fi
  sleep 0.05
done

exec 3>&-
wait "$SERVER"

# The dump names how much it holds, carries one JSON entry per request
# (oldest first), and flags the failed one with its error code.
grep -q -- '--- cxxlookup flight recorder: last 3 of 3 requests ---' "$WORK/err.log"
grep -q '"verb":"lookup","session":"s"' "$WORK/err.log"
grep -q '"outcome":"unknown_op"' "$WORK/err.log"
[ "$(grep -c '"seq":' "$WORK/err.log")" -eq 3 ]

echo "flight_recorder: OK"
