#!/bin/sh
# Cluster chaos smoke test: a leader with a replication listener, a
# WAL-shipping read replica and a shard router, each killed with
# SIGKILL at the worst moment we can arrange:
#
#   1. the replica dies -9 mid-stream while the leader is mutating;
#      the leader must survive (no SIGPIPE death), and a replica
#      restarted over the same store must recover locally, offer its
#      epochs, stream only the delta and converge;
#   2. a router backend dies -9 mid-fan-out; every routed response must
#      still be a well-formed answer — correct via failover, or an
#      explicit backend_unavailable, never a hang or a torn line;
#   3. the router itself dies -9; a restarted one serves again.
#
# Along the way: replica reads match the leader byte-for-byte modulo
# the volatile "via" field, and mutations on the replica are refused
# with not_leader.  Run from the repository root (make cluster-smoke
# does).  Processes are killed by recorded PID only — never by
# pattern — so the harness cannot shoot itself.
set -eu

BIN=${CXXLOOKUP:-_build/default/bin/cxxlookup.exe}
WORK=$(mktemp -d)
cleanup() {
  for f in "$WORK"/*.pid; do
    [ -f "$f" ] && kill -9 "$(cat "$f")" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

await() {
  i=0
  until "$@"; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
      echo "cluster_chaos: timed out waiting for: $*" >&2
      exit 1
    fi
    sleep 0.05
  done
}

# One-shot request against a front end; prints the response line.
req() {
  _addr=$1
  shift
  printf '%s\n' "$@" | "$BIN" client --connect "$_addr" || true
}

epoch_of() {
  req "$1" '{"id":0,"op":"stats","session":"chaos"}' \
    | sed -n 's/.*"epoch":[[:space:]]*\([0-9]*\).*/\1/p'
}

strip_via() {
  sed 's/,"via":"[^"]*"//g'
}

port_from() {
  # port_from FILE PREFIX — parse "PREFIX 127.0.0.1:NNNN" off stderr
  sed -n "s/^$2 127\\.0\\.0\\.1:\\([0-9]*\\).*/\\1/p" "$1" | head -1
}

# --- leader: durable store + replication listener --------------------

"$BIN" serve --listen 127.0.0.1:0 --workers 1 --jobs 1 \
  --store "$WORK/leader.d" --replicate-listen 127.0.0.1:0 \
  2>"$WORK/leader.err" &
echo $! >"$WORK/leader.pid"

await grep -q 'listening on' "$WORK/leader.err"
await grep -q 'replicating on' "$WORK/leader.err"
LEAD=127.0.0.1:$(port_from "$WORK/leader.err" 'listening on')
REPL=127.0.0.1:$(port_from "$WORK/leader.err" 'replicating on')

req "$LEAD" \
  '{"id":0,"op":"open","session":"chaos","source":"struct A { int a; }; struct B : A { int b; };"}' \
  '{"id":1,"op":"mutate","session":"chaos","add_member":{"class":"A","member":{"name":"m1"}}}' \
  '{"id":2,"op":"mutate","session":"chaos","add_member":{"class":"A","member":{"name":"m2"}}}' \
  >"$WORK/seed.out"
grep -q '"ok":true' "$WORK/seed.out"

# --- replica: bootstrap, catch up, serve reads, refuse writes --------

start_replica() {
  "$BIN" replica --follow "$REPL" --store "$WORK/replica.d" \
    --listen 127.0.0.1:0 --workers 1 2>"$1" &
  echo $! >"$WORK/replica.pid"
  await grep -q 'replica listening on' "$1"
  REP=127.0.0.1:$(port_from "$1" 'replica listening on')
}
start_replica "$WORK/replica1.err"

caught_up() {
  [ "$(epoch_of "$REP")" = "$(epoch_of "$LEAD")" ] \
    && [ -n "$(epoch_of "$REP")" ]
}
await caught_up

LOOKUP='{"id":9,"op":"lookup","session":"chaos","class":"B","member":"m2"}'
req "$LEAD" "$LOOKUP" | strip_via >"$WORK/lookup.leader"
req "$REP" "$LOOKUP" | strip_via >"$WORK/lookup.replica"
grep -q '"verdict":"red"' "$WORK/lookup.leader"
diff "$WORK/lookup.leader" "$WORK/lookup.replica"

req "$REP" '{"id":3,"op":"mutate","session":"chaos","add_member":{"class":"A","member":{"name":"nope"}}}' \
  | grep -q '"code":"not_leader"'

# --- chaos 1: kill -9 the replica mid-stream -------------------------

(
  i=3
  while [ $i -le 30 ]; do
    req "$LEAD" "{\"id\":$i,\"op\":\"mutate\",\"session\":\"chaos\",\"add_member\":{\"class\":\"A\",\"member\":{\"name\":\"m$i\"}}}" \
      >>"$WORK/writer.out"
    i=$((i + 1))
  done
) &
WRITER=$!
sleep 0.3
kill -9 "$(cat "$WORK/replica.pid")"
rm -f "$WORK/replica.pid"
wait "$WRITER"
[ "$(grep -c '"ok":true' "$WORK/writer.out")" = 28 ] || {
  echo "cluster_chaos: writer lost mutations while the replica died" >&2
  exit 1
}

# The leader must have shrugged the dead follower off.
[ "$(epoch_of "$LEAD")" = "30" ] || {
  echo "cluster_chaos: leader unhealthy after follower SIGKILL" >&2
  exit 1
}

# Restart over the same store: local recovery first, then the delta.
start_replica "$WORK/replica2.err"
await grep -q 'recovered session "chaos"' "$WORK/replica2.err"
await caught_up
req "$REP" '{"id":9,"op":"lookup","session":"chaos","class":"B","member":"m30"}' \
  | grep -q '"verdict":"red"'

# --- router: fan-out, merge, forward writes to the leader ------------

start_router() {
  "$BIN" router --backend "$LEAD" --backend "$REP" --leader 0 \
    --listen 127.0.0.1:0 2>"$1" &
  echo $! >"$WORK/router.pid"
  await grep -q 'routing on' "$1"
  ROUT=127.0.0.1:$(port_from "$1" 'routing on')
}
start_router "$WORK/router1.err"

BATCH='{"id":7,"op":"batch_lookup","session":"chaos","queries":[{"class":"A","member":"a"},{"class":"B","member":"m1"},{"class":"B","member":"m30"},{"class":"B","member":"none_such"},{"class":"Missing","member":"x"}]}'
req "$LEAD" "$BATCH" | strip_via >"$WORK/batch.leader"
req "$ROUT" "$BATCH" | strip_via >"$WORK/batch.routed"
grep -q '"resolved":3' "$WORK/batch.leader"
diff "$WORK/batch.leader" "$WORK/batch.routed"

req "$ROUT" '{"id":8,"op":"mutate","session":"chaos","add_member":{"class":"A","member":{"name":"via_router"}}}' \
  | grep -q '"ok":true'
[ "$(epoch_of "$LEAD")" = "31" ] || {
  echo "cluster_chaos: routed mutation did not land on the leader" >&2
  exit 1
}
await caught_up

# --- chaos 2: kill -9 a backend mid-fan-out --------------------------

(sleep 0.2; kill -9 "$(cat "$WORK/replica.pid")"; rm -f "$WORK/replica.pid") &
KILLER=$!
: >"$WORK/fanout.out"
i=0
while [ $i -lt 30 ]; do
  req "$ROUT" "$BATCH" >>"$WORK/fanout.out"
  i=$((i + 1))
done
wait "$KILLER"
[ "$(wc -l <"$WORK/fanout.out")" = 30 ] || {
  echo "cluster_chaos: routed requests went unanswered during the kill" >&2
  exit 1
}
if grep -v '"ok":true' "$WORK/fanout.out" \
  | grep -qv '"code":"backend_unavailable"'; then
  echo "cluster_chaos: a routed response was neither a result nor explicit:" >&2
  grep -v '"ok":true' "$WORK/fanout.out" | grep -v backend_unavailable >&2
  exit 1
fi

# With the replica gone, reads must settle on pure failover to the
# leader — correct answers, not unavailability.
req "$ROUT" "$BATCH" | strip_via >"$WORK/batch.failover"
diff "$WORK/batch.leader" "$WORK/batch.failover"

# --- chaos 3: kill -9 the router itself ------------------------------

kill -9 "$(cat "$WORK/router.pid")"
rm -f "$WORK/router.pid"
start_replica "$WORK/replica3.err"
await caught_up
start_router "$WORK/router2.err"
req "$ROUT" "$BATCH" | strip_via >"$WORK/batch.rerouted"
diff "$WORK/batch.leader" "$WORK/batch.rerouted"

echo "cluster_chaos: OK"
