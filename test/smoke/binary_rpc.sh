#!/bin/sh
# Binary hot-path smoke test: one serve process on an ephemeral TCP
# port answers the same transcript over both framings — JSON lines and
# cxxlookup-rpc/1b — and the verdicts must agree verb for verb.  The
# binary run covers the whole int-only path: the symbols round-trip,
# lookup/batch frames, both mutation frames with their intern deltas,
# and the JSON fallback for verbs the 1b framing does not carry.  A
# loadgen burst then drives the frame path concurrently, and the
# server's own frame-decode histogram proves the frames really took
# the binary path.  Run from the repository root (make verify does).
set -eu

BIN=${CXXLOOKUP:-_build/default/bin/cxxlookup.exe}
WORK=$(mktemp -d)
SERVER=
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

PROM="$WORK/node.prom"

"$BIN" serve --listen 127.0.0.1:0 --jobs 1 --workers 1 \
  --metrics-file "$PROM" --metrics-interval 1 \
  2>"$WORK/serve.err" &
SERVER=$!

await() {
  i=0
  until "$@"; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
      echo "binary_rpc: timed out waiting for: $*" >&2
      exit 1
    fi
    sleep 0.05
  done
}

await grep -q 'listening on' "$WORK/serve.err"
PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/serve.err")
[ -n "$PORT" ] || { echo "binary_rpc: could not parse port" >&2; exit 1; }

# The transcript: an ambiguous lookup, a resolving one, a batch whose
# names are all interned (so it travels as one frame), both mutations
# (add_member changes C's verdict, add_class introduces D), lookups
# proving the client's symbol tables followed the intern deltas, and a
# stats verb that only the JSON fallback can carry.
transcript() {
  sed "s/SESS/$1/" <<'EOF'
{"id":1,"op":"open","session":"SESS","source":"struct S { int m; };\nstruct A : virtual S { int m; };\nstruct B : virtual S { int m; };\nstruct C : A, B {};"}
{"id":2,"op":"lookup","session":"SESS","class":"C","member":"m"}
{"id":3,"op":"lookup","session":"SESS","class":"A","member":"m"}
{"id":4,"op":"batch_lookup","session":"SESS","queries":[{"class":"S","member":"m"},{"class":"A","member":"m"},{"class":"C","member":"m"}]}
{"id":5,"op":"mutate","session":"SESS","add_member":{"class":"C","member":{"name":"m"}}}
{"id":6,"op":"lookup","session":"SESS","class":"C","member":"m"}
{"id":7,"op":"mutate","session":"SESS","add_class":{"name":"D","bases":[{"class":"C"}],"members":[{"name":"q"}]}}
{"id":8,"op":"lookup","session":"SESS","class":"D","member":"q"}
{"id":9,"op":"lookup","session":"SESS","class":"D","member":"m"}
{"id":10,"op":"stats","session":"SESS"}
EOF
}

transcript j | "$BIN" client --connect "127.0.0.1:$PORT" >"$WORK/json.jsonl"
transcript b | "$BIN" client --connect "127.0.0.1:$PORT" --binary \
  >"$WORK/bin.jsonl"

# Both runs answered every request ok.
for out in json.jsonl bin.jsonl; do
  [ "$(grep -c '"ok":true' "$WORK/$out")" -eq 10 ] || {
    echo "binary_rpc: $out has errors:" >&2
    cat "$WORK/$out" >&2
    exit 1
  }
done

# Verdict agreement, line by line.  The framings render different
# detail (the 1b protocol drops detail strings by design), so the gate
# is the verdict and the declaring class: normalize each lookup row to
# "id verdict class" and diff.  The binary renderer calls the declaring
# class "class"; JSON calls it "resolves_to".
norm() {
  grep -v '"results"' "$1" | sed -n \
    's/.*"id":\([0-9]*\),"ok":true.*"verdict":"\([a-z]*\)"\(.*"resolves_to":"\([A-Za-z]*\)"\)\{0,1\}.*/\1 \2 \4/p'
}
norm_bin() {
  grep -v '"codes"' "$1" | sed -n \
    's/.*"id":\([0-9]*\),"ok":true.*"verdict":"\([a-z]*\)"\(.*"class":"\([A-Za-z]*\)"\)\{0,1\}.*/\1 \2 \4/p'
}
norm "$WORK/json.jsonl" >"$WORK/json.verdicts"
norm_bin "$WORK/bin.jsonl" >"$WORK/bin.verdicts"
diff "$WORK/json.verdicts" "$WORK/bin.verdicts"

# The interesting verdicts, pinned: C::m ambiguous before the
# mutation, resolving to C after it; both reach D through the
# intern-delta-tracked class table.
grep -q '^2 blue $' "$WORK/json.verdicts"
grep -q '^6 red C$' "$WORK/json.verdicts"
grep -q '^9 red C$' "$WORK/json.verdicts"

# Batch agreement: same counts over the same three queries.
for out in json.jsonl bin.jsonl; do
  grep -q '"id":4,.*"resolved":2,"ambiguous":1,"not_found":0' "$WORK/$out"
done

# A loadgen burst over the 1b framing: every request answered in-band.
"$BIN" loadgen --connect "127.0.0.1:$PORT" examples/fig9.cpp \
  --conns 2 --qps 200 --duration 0.5 --warmup 1 --binary --json \
  >"$WORK/loadgen.json"
grep -q '"errors":[[:space:]]*0' "$WORK/loadgen.json"
if grep -q '"answered":[[:space:]]*0[,}]' "$WORK/loadgen.json"; then
  echo "binary_rpc: loadgen got no responses" >&2
  exit 1
fi

# The server's own evidence that frames took the binary path: the
# frame-decode histogram observed at least the binary transcript's
# framed requests (symbols + lookups + batch + mutations).
sleep 1.2
await test -s "$PROM"
COUNT=$(sed -n 's/^cxxlookup_server_frame_decode_ns_count \([0-9]*\)$/\1/p' "$PROM")
[ -n "$COUNT" ] && [ "$COUNT" -ge 9 ] || {
  echo "binary_rpc: frame_decode count $COUNT, expected >= 9" >&2
  exit 1
}

kill -TERM "$SERVER"
if ! wait "$SERVER"; then
  echo "binary_rpc: server exited non-zero on SIGTERM" >&2
  exit 1
fi
SERVER=

echo "binary_rpc: OK"
