(* Tests for query workloads and their engine/memo drivers. *)

module G = Chg.Graph
module W = Hiergen.Workload

let graph () = Hiergen.Figures.fig3 ()

let test_sparse_deterministic () =
  let g = graph () in
  let a = W.sparse g ~queries:50 ~classes:3 ~seed:9 in
  let b = W.sparse g ~queries:50 ~classes:3 ~seed:9 in
  Alcotest.(check bool) "same seed, same workload" true (a = b);
  let c = W.sparse g ~queries:50 ~classes:3 ~seed:10 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check int) "length" 50 (List.length a)

let test_sparse_locality () =
  let g = graph () in
  let ws = W.sparse g ~queries:200 ~classes:2 ~seed:1 in
  let distinct =
    List.sort_uniq compare (List.map (fun q -> q.W.q_class) ws)
  in
  Alcotest.(check bool) "at most 2 distinct classes" true
    (List.length distinct <= 2)

let test_exhaustive_shape () =
  let g = graph () in
  let ws = W.exhaustive g in
  Alcotest.(check int) "classes x members" (8 * 2) (List.length ws)

let test_drivers_agree () =
  let g = graph () in
  let cl = Chg.Closure.compute g in
  let ws = W.exhaustive g in
  let eng = Lookup_core.Engine.build cl in
  let memo = Lookup_core.Memo.create cl in
  let se = W.run_engine eng ws and sm = W.run_memo memo ws in
  Alcotest.(check bool) "same summary" true (se = sm);
  Alcotest.(check int) "summary accounts every query" (List.length ws)
    (W.total se);
  (* fig3: resolved lookups = all (class, member) pairs with a red
     verdict: foo at A,B,C,G,H; bar at D,E,F?,G,H?...
     count them from the engine directly *)
  let expected =
    List.length
      (List.filter
         (fun q ->
           match Lookup_core.Engine.lookup eng q.W.q_class q.W.q_member with
           | Some (Lookup_core.Engine.Red _) -> true
           | _ -> false)
         ws)
  in
  Alcotest.(check int) "checksum" expected se.W.resolved

let test_empty_graph () =
  let g = G.freeze (G.create_builder ()) in
  Alcotest.(check (list unit)) "no queries" []
    (List.map (fun _ -> ()) (W.sparse g ~queries:10 ~classes:3 ~seed:0))

let suite =
  [ Alcotest.test_case "sparse is deterministic" `Quick
      test_sparse_deterministic;
    Alcotest.test_case "sparse has locality" `Quick test_sparse_locality;
    Alcotest.test_case "exhaustive shape" `Quick test_exhaustive_shape;
    Alcotest.test_case "memo and engine drivers agree" `Quick
      test_drivers_agree;
    Alcotest.test_case "empty graph" `Quick test_empty_graph ]
