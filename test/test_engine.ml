(* Tests for the Figure 8 algorithm: verdicts and abstractions on the
   paper's figures (including the exact Red/Blue tags of Figures 6-7),
   the static-member extension, witnesses, and the lazy variant. *)

module G = Chg.Graph
module A = Lookup_core.Abstraction
module Engine = Lookup_core.Engine
module Memo = Lookup_core.Memo
module Path = Subobject.Path

let engine_for g = Engine.build ~witnesses:true (Chg.Closure.compute g)

let check_red g eng cls m ~ldc ~lv =
  let c = G.find g cls in
  match Engine.lookup eng c m with
  | Some (Engine.Red r) ->
    Alcotest.(check string)
      (Printf.sprintf "lookup(%s,%s) ldc" cls m)
      ldc
      (G.name g r.A.r_ldc);
    let got_lv =
      match r.A.r_lvs with
      | [ A.Omega ] -> "Ω"
      | [ A.Lv v ] -> G.name g v
      | _ -> "group"
    in
    Alcotest.(check string) (Printf.sprintf "lookup(%s,%s) lv" cls m) lv got_lv
  | Some (Engine.Blue _) ->
    Alcotest.failf "lookup(%s,%s): unexpectedly ambiguous" cls m
  | None -> Alcotest.failf "lookup(%s,%s): unexpectedly absent" cls m

let check_blue g eng cls m ~set =
  let c = G.find g cls in
  match Engine.lookup eng c m with
  | Some (Engine.Blue s) ->
    let got =
      List.map (function A.Omega -> "Ω" | A.Lv v -> G.name g v) s
    in
    Alcotest.(check (list string))
      (Printf.sprintf "lookup(%s,%s) blue set" cls m)
      set got
  | Some (Engine.Red _) ->
    Alcotest.failf "lookup(%s,%s): unexpectedly resolved" cls m
  | None -> Alcotest.failf "lookup(%s,%s): unexpectedly absent" cls m

let test_fig1 () =
  let g = Hiergen.Figures.fig1 () in
  let eng = engine_for g in
  check_red g eng "A" "m" ~ldc:"A" ~lv:"Ω";
  check_red g eng "C" "m" ~ldc:"A" ~lv:"Ω";
  check_red g eng "D" "m" ~ldc:"D" ~lv:"Ω";
  (* Two distinct non-virtual A (resp. B) subobjects reach E. *)
  check_blue g eng "E" "m" ~set:[ "Ω" ]

let test_fig2 () =
  let g = Hiergen.Figures.fig2 () in
  let eng = engine_for g in
  check_red g eng "E" "m" ~ldc:"D" ~lv:"Ω";
  check_red g eng "C" "m" ~ldc:"A" ~lv:"B"

let test_fig6_abstractions () =
  (* Figure 6, propagation of foo:
     - at D the two (A, Ω) reds collide: blue {Ω};
     - at F the blue is pushed through the virtual edge D -> F: blue {D};
     - at G a generated definition: red (G, Ω);
     - at H red (G, Ω) dominates the blue D (D is a virtual base of G). *)
  let g = Hiergen.Figures.fig3 () in
  let eng = engine_for g in
  check_red g eng "B" "foo" ~ldc:"A" ~lv:"Ω";
  check_red g eng "C" "foo" ~ldc:"A" ~lv:"Ω";
  check_blue g eng "D" "foo" ~set:[ "Ω" ];
  check_blue g eng "F" "foo" ~set:[ "D" ];
  check_red g eng "G" "foo" ~ldc:"G" ~lv:"Ω";
  check_red g eng "H" "foo" ~ldc:"G" ~lv:"Ω"

let test_fig7_abstractions () =
  (* Figure 7, propagation of bar:
     - at F, reds (D, D) (via the virtual edge) and (E, Ω) are
       incomparable: blue {Ω, D};
     - at G, red (D, D) is killed by the generated bar: red (G, Ω);
     - at H, the candidate (G, Ω) dominates blue D but not blue Ω:
       blue {Ω}. *)
  let g = Hiergen.Figures.fig3 () in
  let eng = engine_for g in
  check_red g eng "D" "bar" ~ldc:"D" ~lv:"Ω";
  check_red g eng "E" "bar" ~ldc:"E" ~lv:"Ω";
  check_blue g eng "F" "bar" ~set:[ "Ω"; "D" ];
  check_red g eng "G" "bar" ~ldc:"G" ~lv:"Ω";
  check_blue g eng "H" "bar" ~set:[ "Ω" ]

let test_fig9 () =
  let g = Hiergen.Figures.fig9 () in
  let eng = engine_for g in
  check_red g eng "E" "m" ~ldc:"C" ~lv:"Ω";
  check_red g eng "D" "m" ~ldc:"C" ~lv:"Ω";
  check_red g eng "C" "m" ~ldc:"C" ~lv:"Ω"

let test_witnesses () =
  let g = Hiergen.Figures.fig3 () in
  let eng = engine_for g in
  let h = G.find g "H" in
  (match Engine.witness eng h "foo" with
  | Some p ->
    Alcotest.(check string) "witness ldc" "G" (G.name g (Path.ldc p));
    Alcotest.(check string) "witness mdc" "H" (G.name g (Path.mdc p));
    Alcotest.(check bool) "witness is a real path" true (Path.in_graph g p);
    (* The witness must actually be a most-dominant defining path. *)
    (match Subobject.Spec.lookup g h "foo" with
    | Subobject.Spec.Resolved q ->
      Alcotest.(check bool) "witness ≈ spec winner" true (Path.equiv p q)
    | _ -> Alcotest.fail "spec disagrees")
  | None -> Alcotest.fail "no witness for resolved lookup");
  Alcotest.(check bool) "no witness for ambiguous" true
    (Engine.witness eng h "bar" = None)

let test_members_sets () =
  let g = Hiergen.Figures.fig3 () in
  let eng = engine_for g in
  Alcotest.(check (list string)) "Members[H]" [ "foo"; "bar" ]
    (Engine.members eng (G.find g "H"));
  Alcotest.(check (list string)) "Members[E]" [ "bar" ]
    (Engine.members eng (G.find g "E"));
  Alcotest.(check (list string)) "Members[B]" [ "foo" ]
    (Engine.members eng (G.find g "B"))

let test_static_rule_engine () =
  let b = G.create_builder () in
  ignore (G.add_class b "S" ~bases:[] ~members:[ G.member ~static:true "m" ]);
  ignore
    (G.add_class b "A" ~bases:[ ("S", G.Non_virtual, G.Public) ] ~members:[]);
  ignore
    (G.add_class b "B" ~bases:[ ("S", G.Non_virtual, G.Public) ] ~members:[]);
  ignore
    (G.add_class b "C"
       ~bases:
         [ ("A", G.Non_virtual, G.Public); ("B", G.Non_virtual, G.Public) ]
       ~members:[]);
  let g = G.freeze b in
  let cl = Chg.Closure.compute g in
  let with_rule = Engine.build ~static_rule:true cl in
  let without = Engine.build ~static_rule:false cl in
  let c = G.find g "C" in
  (match Engine.lookup with_rule c "m" with
  | Some (Engine.Red r) ->
    Alcotest.(check string) "static resolves to S" "S" (G.name g r.A.r_ldc)
  | _ -> Alcotest.fail "static rule should resolve");
  match Engine.lookup without c "m" with
  | Some (Engine.Blue _) -> ()
  | _ -> Alcotest.fail "without the rule it must stay ambiguous"

let test_memo_matches_eager () =
  List.iter
    (fun mk ->
      let g = mk () in
      let cl = Chg.Closure.compute g in
      let eager = Engine.build cl in
      let lazy_t = Memo.create cl in
      G.iter_classes g (fun c ->
          List.iter
            (fun m ->
              let a = Engine.lookup eager c m in
              let b = Memo.lookup lazy_t c m in
              Alcotest.(check bool)
                (Printf.sprintf "%s::%s" (G.name g c) m)
                true (a = b))
            (G.member_names g)))
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let test_memo_is_lazy () =
  (* Querying a mid-chain class must not compute entries for classes
     above it. *)
  let { Hiergen.Families.graph = g; _ } =
    Hiergen.Families.chain ~n:100 ~kind:G.Non_virtual
  in
  let t = Memo.create (Chg.Closure.compute g) in
  ignore (Memo.lookup t (G.find g "C9") "m");
  Alcotest.(check int) "only 10 entries" 10 (Memo.cached_entries t);
  ignore (Memo.lookup t (G.find g "C9") "m");
  Alcotest.(check int) "cache hit adds nothing" 10 (Memo.cached_entries t)

let test_build_member_single () =
  let g = Hiergen.Figures.fig3 () in
  let cl = Chg.Closure.compute g in
  let eng = Engine.build_member cl "foo" in
  let h = G.find g "H" in
  (match Engine.lookup eng h "foo" with
  | Some (Engine.Red _) -> ()
  | _ -> Alcotest.fail "foo should resolve at H");
  Alcotest.(check bool) "bar not tabulated" true
    (Engine.lookup eng h "bar" = None)

let test_resolves_to () =
  let g = Hiergen.Figures.fig9 () in
  let eng = engine_for g in
  Alcotest.(check (option string)) "resolves_to" (Some "C")
    (Option.map (G.name g) (Engine.resolves_to eng (G.find g "E") "m"))

let test_blue_union () =
  (* the linear merge: sorted (lv_compare: Ω first, then class ids),
     deduplicated, and every input element present *)
  let module A = Lookup_core.Abstraction in
  let sorted_dedup l =
    let rec ok = function
      | a :: (b :: _ as tl) -> A.lv_compare a b < 0 && ok tl
      | _ -> true
    in
    ok l
  in
  let u1 = Engine.blue_union [ A.Omega; A.Lv 1; A.Lv 5 ] [ A.Omega; A.Lv 2; A.Lv 5 ] in
  Alcotest.(check bool) "union merges" true
    (u1 = [ A.Omega; A.Lv 1; A.Lv 2; A.Lv 5 ]);
  Alcotest.(check bool) "union sorted, no duplicates" true (sorted_dedup u1);
  Alcotest.(check bool) "left identity" true
    (Engine.blue_union [] [ A.Lv 3 ] = [ A.Lv 3 ]);
  Alcotest.(check bool) "right identity" true
    (Engine.blue_union [ A.Lv 3 ] [] = [ A.Lv 3 ]);
  Alcotest.(check bool) "idempotent" true
    (Engine.blue_union [ A.Omega; A.Lv 4 ] [ A.Omega; A.Lv 4 ]
    = [ A.Omega; A.Lv 4 ]);
  (* Ω sorts before every class id, including id 0 *)
  let u2 = Engine.blue_union [ A.Lv 0 ] [ A.Omega ] in
  Alcotest.(check bool) "omega first" true (u2 = [ A.Omega; A.Lv 0 ])

let suite =
  [ Alcotest.test_case "figure 1" `Quick test_fig1;
    Alcotest.test_case "figure 2" `Quick test_fig2;
    Alcotest.test_case "figure 6 abstractions" `Quick test_fig6_abstractions;
    Alcotest.test_case "figure 7 abstractions" `Quick test_fig7_abstractions;
    Alcotest.test_case "figure 9" `Quick test_fig9;
    Alcotest.test_case "witness paths" `Quick test_witnesses;
    Alcotest.test_case "Members[] sets" `Quick test_members_sets;
    Alcotest.test_case "static member rule" `Quick test_static_rule_engine;
    Alcotest.test_case "memo = eager" `Quick test_memo_matches_eager;
    Alcotest.test_case "memo is lazy" `Quick test_memo_is_lazy;
    Alcotest.test_case "single-member build" `Quick test_build_member_single;
    Alcotest.test_case "resolves_to" `Quick test_resolves_to;
    Alcotest.test_case "blue_union merge" `Quick test_blue_union ]
