(* Observability-layer tests: the log-bucketed histogram's merge and
   quantile contracts (unit + QCheck), the flight-recorder ring, the
   metric registry, the Prometheus renderer against the project's own
   exposition checker, the checker's reject paths, and the determinism
   contract that per-domain column-cost histograms merged from any
   --jobs schedule compare equal. *)

module H = Telemetry.Histogram
module Ring = Telemetry.Ring
module Registry = Telemetry.Registry
module Prometheus = Telemetry.Prometheus
module Expocheck = Telemetry.Expocheck
module Counter = Telemetry.Counter
module G = Chg.Graph
module Metrics = Lookup_core.Metrics
module Packed = Lookup_core.Packed
module Families = Hiergen.Families

(* ---- histogram unit tests ------------------------------------------ *)

let test_histogram_basics () =
  let h = H.create () in
  Alcotest.(check bool) "fresh is empty" true (H.is_empty h);
  Alcotest.(check int) "empty quantile" 0 (H.quantile h 0.5);
  List.iter (H.record h) [ 3; 7; 7; 100; 5000; 0; -4 ];
  Alcotest.(check int) "count" 7 (H.count h);
  Alcotest.(check int) "negative clamps to 0" 0 (H.min_value h);
  Alcotest.(check int) "exact max" 5000 (H.max_value h);
  Alcotest.(check int) "q=0 is the exact min" 0 (H.quantile h 0.);
  Alcotest.(check int) "q=1 is the exact max" 5000 (H.quantile h 1.);
  (* values below 16 land in exact buckets *)
  let small = H.create () in
  List.iter (H.record small) [ 3; 3; 3; 9 ];
  Alcotest.(check int) "small values quantize exactly" 3
    (H.quantile small 0.5);
  H.reset h;
  Alcotest.(check bool) "reset empties" true (H.is_empty h);
  Alcotest.(check int) "reset zeroes the sum" 0 (H.sum h)

let test_histogram_percentile_fields () =
  let h = H.create () in
  for i = 1 to 1000 do
    H.record h i
  done;
  let fields = H.percentile_fields h in
  Alcotest.(check (list string)) "field names"
    [ "p50"; "p90"; "p99"; "p999"; "max" ]
    (List.map fst fields);
  let get k = List.assoc k fields in
  Alcotest.(check int) "max is exact" 1000 (get "max");
  (* each percentile is an upper bucket bound: >= the true value and
     within the documented 12.5% relative error *)
  List.iter
    (fun (k, truth) ->
      let est = get k in
      Alcotest.(check bool)
        (Printf.sprintf "%s bound holds (%d vs true %d)" k est truth)
        true
        (est >= truth && float_of_int est <= float_of_int truth *. 1.125))
    [ ("p50", 500); ("p90", 900); ("p99", 990) ];
  Alcotest.(check int) "observations_above counts the tail" 0
    (H.observations_above h 1024);
  (* may undercount by at most the threshold's own bucket (width 64 at
     512), never overcount *)
  let above = H.observations_above h 512 in
  Alcotest.(check bool) "observations_above a mid boundary" true
    (above >= 1000 - 512 - 64 && above <= 1000 - 512)

let test_histogram_merge_lossless () =
  let a = H.create () and b = H.create () and all = H.create () in
  List.iter
    (fun v -> H.record a v; H.record all v)
    [ 1; 17; 300; 300; 9_000_000 ];
  List.iter (fun v -> H.record b v; H.record all v) [ 0; 2; 65_536 ];
  let m = H.merge a b in
  Alcotest.(check bool) "merge = concatenated stream" true (H.equal m all);
  Alcotest.(check int) "merged count" (H.count a + H.count b) (H.count m);
  Alcotest.(check int) "merged sum" (H.sum a + H.sum b) (H.sum m);
  Alcotest.(check int) "merged min" 0 (H.min_value m);
  Alcotest.(check int) "merged max" 9_000_000 (H.max_value m);
  (* merging an empty histogram is the identity *)
  let e = H.create () in
  Alcotest.(check bool) "empty is right identity" true
    (H.equal (H.merge a e) a);
  Alcotest.(check bool) "empty is left identity" true
    (H.equal (H.merge e a) a)

(* ---- histogram QCheck properties ----------------------------------- *)

let obs_gen =
  (* spans exact buckets, several octaves, and the clamp *)
  QCheck.Gen.(
    list_size (int_range 0 200)
      (oneof
         [ int_range (-2) 20; int_range 0 5000; int_range 0 10_000_000 ]))

let obs_arb = QCheck.make obs_gen ~print:QCheck.Print.(list int)

let of_list vs =
  let h = H.create () in
  List.iter (H.record h) vs;
  h

let prop_merge_commutative =
  QCheck.Test.make ~count:300 ~name:"histogram merge is commutative"
    (QCheck.pair obs_arb obs_arb) (fun (xs, ys) ->
      let a = of_list xs and b = of_list ys in
      H.equal (H.merge a b) (H.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:300 ~name:"histogram merge is associative"
    (QCheck.triple obs_arb obs_arb obs_arb) (fun (xs, ys, zs) ->
      let a = of_list xs and b = of_list ys and c = of_list zs in
      H.equal (H.merge (H.merge a b) c) (H.merge a (H.merge b c)))

let prop_merge_is_concatenation =
  QCheck.Test.make ~count:300
    ~name:"merge equals the concatenated record stream"
    (QCheck.pair obs_arb obs_arb) (fun (xs, ys) ->
      H.equal (H.merge (of_list xs) (of_list ys)) (of_list (xs @ ys)))

let prop_quantile_within_bounds =
  (* the true q-quantile of the recorded stream lies inside
     [quantile_bounds], and [quantile] answers that bucket's upper
     bound *)
  QCheck.Test.make ~count:300 ~name:"quantile brackets the true value"
    (QCheck.pair obs_arb (QCheck.float_range 0. 1.))
    (fun (xs, q) ->
      QCheck.assume (xs <> []);
      let clamp v = max 0 v in
      let sorted = List.sort compare (List.map clamp xs) in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let truth = List.nth sorted (rank - 1) in
      let h = of_list xs in
      let lo, hi = H.quantile_bounds h q in
      (* quantile answers within the same bucket (clamped to the exact
         extremes, so it may sit below the bucket's upper bound) *)
      let est = H.quantile h q in
      lo <= truth && truth <= hi && lo <= est && est <= hi)

(* the --jobs determinism contract, end to end: per-domain histograms
   merged under any schedule compare equal, because the recorded unit is
   the deterministic per-column edge-traversal cost *)
let prop_jobs_merge_deterministic =
  let gen =
    QCheck.Gen.(
      map
        (fun (n, seed) ->
          Families.random_dag ~n ~max_bases:3 ~virtual_prob:0.3
            ~declare_prob:0.4
            ~members:[ "m"; "n"; "p"; "q" ]
            ~seed)
        (pair (int_range 4 40) (int_range 0 1000)))
  in
  let arb =
    QCheck.make gen ~print:(fun i -> i.Families.description)
  in
  QCheck.Test.make ~count:25
    ~name:"column-cost histograms identical for jobs=1/2/4/7" arb
    (fun { Families.graph = g; _ } ->
      let cl = Chg.Closure.compute g in
      let cost jobs =
        let m = Metrics.create () in
        ignore (Packed.build ~jobs ~metrics:m cl);
        m.Metrics.column_cost
      in
      let reference = cost 1 in
      List.for_all (fun jobs -> H.equal (cost jobs) reference) [ 2; 4; 7 ])

(* ---- ring (flight-recorder storage) -------------------------------- *)

let test_ring () =
  let r = Ring.create 3 in
  Alcotest.(check bool) "fresh is empty" true (Ring.is_empty r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "partial fill keeps order" [ 1; 2 ]
    (Ring.to_list r);
  List.iter (Ring.push r) [ 3; 4; 5 ];
  Alcotest.(check int) "length capped" 3 (Ring.length r);
  Alcotest.(check int) "total pushes tracked" 5 (Ring.pushed r);
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5 ]
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check bool) "clear empties" true (Ring.is_empty r);
  Alcotest.(check int) "capacity survives clear" 3 (Ring.capacity r);
  Alcotest.check_raises "capacity must be >= 1"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create 0))

(* ---- registry + renderer ------------------------------------------- *)

let test_registry_and_render () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"requests" "cxxlookup_test_total" in
  Counter.add c 3;
  (* find-or-create: same key yields the same instrument *)
  Counter.incr (Registry.counter r "cxxlookup_test_total");
  Alcotest.(check int) "one series behind both handles" 4
    (Counter.value c);
  let h =
    Registry.histogram r
      ~labels:[ ("verb", "lookup") ]
      "cxxlookup_test_ns"
  in
  Telemetry.Histogram.record h 100;
  Registry.gauge r "cxxlookup_test_gauge" (fun () -> 7);
  let body = Prometheus.render r in
  (match Expocheck.check body with
  | Ok n ->
    (* counter + gauge + the histogram's bucket/sum/count series *)
    Alcotest.(check bool) "sample count plausible" true (n >= 5)
  | Error e -> Alcotest.failf "renderer output rejected: %s" e);
  Alcotest.(check string) "render is deterministic" body
    (Prometheus.render r);
  (* attach under a live key replaces the series (reopened session) *)
  let fresh = Counter.make "fresh" in
  Counter.add fresh 42;
  Registry.attach_counter r "cxxlookup_test_total" fresh;
  (match Registry.find_values r "cxxlookup_test_total" with
  | [ ([], v) ] -> Alcotest.(check int) "replacement visible" 42 v
  | _ -> Alcotest.fail "expected one unlabelled series");
  (* label values with quotes, backslashes and newlines survive the
     round trip through the renderer and the checker *)
  let tricky = Registry.create () in
  Counter.incr
    (Registry.counter tricky
       ~labels:[ ("path", "a\\b\"c\nd") ]
       "cxxlookup_tricky_total");
  match Expocheck.check (Prometheus.render tricky) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "escaped labels rejected: %s" e

let test_registry_name_validation () =
  Alcotest.(check bool) "valid name" true
    (Registry.valid_name "cxxlookup_server_requests_total");
  Alcotest.(check bool) "leading digit invalid" false
    (Registry.valid_name "9lives");
  Alcotest.(check bool) "hyphen invalid" false
    (Registry.valid_name "cxxlookup-total");
  Alcotest.(check bool) "colon valid in metric names" true
    (Registry.valid_name "job:rate");
  Alcotest.(check bool) "colon invalid in label names" false
    (Registry.valid_label_name "job:rate")

(* ---- expocheck reject paths ---------------------------------------- *)

let test_expocheck_rejects () =
  let reject what text =
    match Expocheck.check text with
    | Ok _ -> Alcotest.failf "checker accepted %s" what
    | Error _ -> ()
  in
  (match Expocheck.check "# TYPE a_total counter\na_total 3\n" with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 sample, got %d" n
  | Error e -> Alcotest.failf "minimal scrape rejected: %s" e);
  reject "a bad metric name" "9lives 3\n";
  reject "an unquoted label value" "a_total{x=3} 1\n";
  reject "a non-numeric value" "a_total three\n";
  reject "a negative counter" "# TYPE a_total counter\na_total -1\n";
  reject "a duplicate sample" "a_total 1\na_total 2\n";
  reject "TYPE after samples" "a_total 1\n# TYPE a_total counter\n";
  reject "an unknown TYPE" "# TYPE a_total meter\na_total 1\n";
  reject "non-cumulative buckets"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 5\n\
     h_bucket{le=\"2\"} 3\n\
     h_bucket{le=\"+Inf\"} 5\n\
     h_count 5\nh_sum 9\n";
  reject "a missing +Inf bucket"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 9\n";
  reject "+Inf disagreeing with _count"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 5\n\
     h_bucket{le=\"+Inf\"} 5\n\
     h_count 6\nh_sum 9\n";
  (* monotonicity across scrapes *)
  let prev = "# TYPE a_total counter\na_total 5\n" in
  let next = "# TYPE a_total counter\na_total 4\n" in
  (match Expocheck.check_monotone ~prev ~next with
  | Ok () -> Alcotest.fail "checker accepted a counter going backwards"
  | Error _ -> ());
  match Expocheck.check_monotone ~prev:next ~next:prev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "monotone increase rejected: %s" e

let suite =
  [ Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram percentile fields" `Quick
      test_histogram_percentile_fields;
    Alcotest.test_case "histogram merge is lossless" `Quick
      test_histogram_merge_lossless;
    Alcotest.test_case "ring buffer" `Quick test_ring;
    Alcotest.test_case "registry + Prometheus renderer" `Quick
      test_registry_and_render;
    Alcotest.test_case "metric name validation" `Quick
      test_registry_name_validation;
    Alcotest.test_case "expocheck rejects malformed scrapes" `Quick
      test_expocheck_rejects ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_merge_commutative; prop_merge_associative;
        prop_merge_is_concatenation; prop_quantile_within_bounds;
        prop_jobs_merge_deterministic ]
