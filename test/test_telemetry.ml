(* Telemetry tests: the instrumentation layer makes the paper's Section 5
   complexity model directly observable, so its bounds become executable
   assertions here — most importantly that the per-member edge-traversal
   count is linear in |N|+|E| on all-unambiguous hierarchies. *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Memo = Lookup_core.Memo
module Incremental = Lookup_core.Incremental
module Metrics = Lookup_core.Metrics
module Families = Hiergen.Families
module Counter = Telemetry.Counter

let v = Counter.value

(* The paper's Figure 9 hierarchy: S; A,B : virtual S; C : virtual A,
   virtual B; D : C; E : virtual A, virtual B, D — everyone but D and E
   declares m; lookup(E, m) famously resolves to C::m. *)
let fig9 () =
  let b = G.create_builder () in
  let m = [ G.member "m" ] in
  let vb n = (n, G.Virtual, G.Public) in
  let nb n = (n, G.Non_virtual, G.Public) in
  ignore (G.add_class b "S" ~bases:[] ~members:m);
  ignore (G.add_class b "A" ~bases:[ vb "S" ] ~members:m);
  ignore (G.add_class b "B" ~bases:[ vb "S" ] ~members:m);
  ignore (G.add_class b "C" ~bases:[ vb "A"; vb "B" ] ~members:m);
  ignore (G.add_class b "D" ~bases:[ nb "C" ] ~members:[]);
  ignore (G.add_class b "E" ~bases:[ vb "A"; vb "B"; nb "D" ] ~members:[]);
  G.freeze b

(* -- telemetry primitives ------------------------------------------- *)

let test_counter_timer_sink () =
  let c = Counter.make "c" in
  Counter.incr c;
  Counter.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (v c);
  Counter.reset c;
  Alcotest.(check int) "counter resets" 0 (v c);
  let t = Telemetry.Timer.make "t" in
  let x = Telemetry.Timer.span t (fun () -> 41 + 1) in
  Alcotest.(check int) "span returns" 42 x;
  Alcotest.(check int) "span counted" 1 (Telemetry.Timer.count t);
  Alcotest.(check bool) "duration non-negative" true
    (Telemetry.Timer.total_ns t >= 0);
  let sink = Telemetry.Sink.create ~limit:2 () in
  for i = 1 to 5 do
    Telemetry.Sink.emit sink "e" [ ("i", Telemetry.Event.Int i) ]
  done;
  Alcotest.(check int) "limit keeps prefix" 2 (Telemetry.Sink.length sink);
  Alcotest.(check int) "excess counted as dropped" 3
    (Telemetry.Sink.dropped sink);
  Alcotest.(check bool) "null sink drops silently" true
    (Telemetry.Sink.emit Telemetry.Sink.null "e" [];
     Telemetry.Sink.length Telemetry.Sink.null = 0)

let test_json_output () =
  let j =
    Telemetry.Json.Obj
      [ ("s", Telemetry.Json.String "a\"b\nc");
        ("f", Telemetry.Json.Float 1.5);
        ("l", Telemetry.Json.List [ Telemetry.Json.Int 1; Telemetry.Json.Null ])
      ]
  in
  Alcotest.(check string) "compact json"
    "{\"s\":\"a\\\"b\\nc\",\"f\":1.5,\"l\":[1,null]}"
    (Telemetry.Json.to_string j);
  (* telemetry JSON must stay parseable by the project's own parser when
     no floats are involved (one toolchain, two dialects would be a trap) *)
  let ints = Telemetry.Json.Obj [ ("n", Telemetry.Json.Int 3) ] in
  match Chg.Json.of_string (Telemetry.Json.to_string ~pretty:true ints) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Chg.Json rejects telemetry output: %s" e

(* -- engine instrumentation ----------------------------------------- *)

let test_engine_counters () =
  let g = fig9 () in
  let m = Metrics.create () in
  ignore (Engine.build ~metrics:m (Chg.Closure.compute g));
  Alcotest.(check int) "classes visited" 6 (v m.Metrics.classes_visited);
  Alcotest.(check int) "entries computed" 6 (v m.Metrics.members_processed);
  Alcotest.(check int) "declared kills" 4 (v m.Metrics.declared_kills);
  (* only D (1 base) and E (3 bases) collect incoming verdicts *)
  Alcotest.(check int) "edge traversals" 4 (v m.Metrics.edge_traversals);
  Alcotest.(check int) "every entry got a verdict" 6
    (v m.Metrics.red_verdicts + v m.Metrics.blue_verdicts);
  Alcotest.(check int) "fig9 is unambiguous" 0 (v m.Metrics.blue_verdicts);
  Alcotest.(check bool) "dominance probes ran" true
    (v m.Metrics.dominance_probes > 0);
  Alcotest.(check int) "one timed build" 1
    (Telemetry.Timer.count m.Metrics.build_timer)

let test_disabled_metrics_inert () =
  (* builds without ?metrics must not leak into the shared disabled bag *)
  let g = fig9 () in
  let cl = Chg.Closure.compute g in
  ignore (Engine.build cl);
  let memo = Memo.create cl in
  G.iter_classes g (fun c -> ignore (Memo.lookup memo c "m"));
  List.iter
    (fun (name, value) ->
      Alcotest.(check int) ("disabled counter " ^ name) 0 value)
    (Metrics.counters Metrics.disabled);
  Alcotest.(check int) "disabled sink stays empty" 0
    (Telemetry.Sink.length Metrics.disabled.Metrics.sink)

let test_red_demotion_counted () =
  (* Figure 1-style replicated base: two non-virtual A subobjects reach
     the join, so two red verdicts combine into a blue one. *)
  let b = G.create_builder () in
  let nb n = (n, G.Non_virtual, G.Public) in
  ignore (G.add_class b "A" ~bases:[] ~members:[ G.member "m" ]);
  ignore (G.add_class b "L" ~bases:[ nb "A" ] ~members:[]);
  ignore (G.add_class b "R" ~bases:[ nb "A" ] ~members:[]);
  ignore (G.add_class b "J" ~bases:[ nb "L"; nb "R" ] ~members:[]);
  let g = G.freeze b in
  let m = Metrics.create () in
  ignore (Engine.build ~metrics:m (Chg.Closure.compute g));
  Alcotest.(check int) "one ambiguous entry" 1 (v m.Metrics.blue_verdicts);
  Alcotest.(check int) "demotion counted" 1 (v m.Metrics.red_demotions)

(* -- memo instrumentation (satellite: cache hit/miss accounting) ----- *)

let test_memo_cache_hit_accounting () =
  let g = fig9 () in
  let m = Metrics.create () in
  let memo = Memo.create ~metrics:m (Chg.Closure.compute g) in
  let e = G.find g "E" in
  let first = Memo.lookup memo e "m" in
  let entries = Memo.cached_entries memo in
  let misses = v m.Metrics.memo_misses in
  let hits = v m.Metrics.memo_hits in
  Alcotest.(check bool) "first query fills the cache" true (entries > 0);
  Alcotest.(check bool) "root query recursed into bases" true
    (v m.Metrics.memo_recursive_fills > 0);
  (* the repeated query must not grow the cache and must register as
     exactly one cache hit *)
  let second = Memo.lookup memo e "m" in
  Alcotest.(check bool) "same verdict" true (first = second);
  Alcotest.(check int) "cache did not grow" entries
    (Memo.cached_entries memo);
  Alcotest.(check int) "no new misses" misses (v m.Metrics.memo_misses);
  Alcotest.(check int) "exactly one new hit" (hits + 1)
    (v m.Metrics.memo_hits);
  (* laziness is visible in the counters too: only E and its bases *)
  Alcotest.(check int) "entries = misses" entries (v m.Metrics.memo_misses)

(* -- incremental instrumentation ------------------------------------ *)

let test_incremental_counters () =
  let g = fig9 () in
  let m = Metrics.create () in
  let inc = Incremental.create ~metrics:m () in
  G.iter_classes g (fun c ->
      ignore
        (Incremental.add_class inc (G.name g c)
           ~bases:
             (List.map
                (fun (b : G.base) -> (G.name g b.b_class, b.b_kind, b.b_access))
                (G.bases g c))
           ~members:(G.members g c)));
  Alcotest.(check int) "one row per class" 6 (v m.Metrics.incr_rows);
  Alcotest.(check int) "per-row members = table entries" 6
    (v m.Metrics.incr_row_members);
  Alcotest.(check bool) "closure growth recorded" true
    (v m.Metrics.incr_closure_bits > 0);
  Alcotest.(check int) "same edge traversals as the eager pass" 4
    (v m.Metrics.edge_traversals)

(* -- trace replay ---------------------------------------------------- *)

let test_trace_replays_topologically () =
  let g = fig9 () in
  let m = Metrics.create ~trace:true () in
  let eng = Engine.build_member ~metrics:m (Chg.Closure.compute g) "m" in
  let events = Telemetry.Sink.events m.Metrics.sink in
  Alcotest.(check bool) "events recorded" true (events <> []);
  let int_field ev k =
    match Telemetry.Event.field_opt ev k with
    | Some (Telemetry.Event.Int i) -> Some i
    | _ -> None
  in
  let str_field ev k =
    match Telemetry.Event.field_opt ev k with
    | Some (Telemetry.Event.Str s) -> Some s
    | _ -> None
  in
  (* classes are visited in topological (= id) order *)
  let visit_ids =
    List.filter_map
      (fun (ev : Telemetry.Event.t) ->
        if ev.name = "visit" then int_field ev "id" else None)
      events
  in
  Alcotest.(check (list int)) "visits in topological order"
    [ 0; 1; 2; 3; 4; 5 ] visit_ids;
  (* every flow event lands on the class being visited *)
  let current = ref None in
  List.iter
    (fun (ev : Telemetry.Event.t) ->
      match ev.name with
      | "visit" -> current := str_field ev "class"
      | "flow" ->
        Alcotest.(check (option string))
          "flow targets the visited class" !current (str_field ev "to")
      | _ -> ())
    events;
  (* the traced verdict for E matches the engine's *)
  let e_verdict =
    List.find_map
      (fun (ev : Telemetry.Event.t) ->
        if ev.name = "verdict" && str_field ev "class" = Some "E" then
          str_field ev "verdict"
        else None)
      events
  in
  let expected =
    Option.map
      (Format.asprintf "%a" (Engine.pp_verdict g))
      (Engine.lookup eng (G.find g "E") "m")
  in
  Alcotest.(check (option string)) "traced verdict = engine verdict"
    expected e_verdict;
  (* spans are well-bracketed *)
  let count name =
    List.length
      (List.filter (fun (ev : Telemetry.Event.t) -> ev.name = name) events)
  in
  Alcotest.(check int) "span begin/end pair up" (count "span_begin")
    (count "span_end")

(* -- the Section 5 bound as a property ------------------------------- *)

(* All-unambiguous families (every lookup of "m" resolves): chains,
   redeclared diamond stacks, and wide trees, across random sizes.  The
   paper claims O(|N|+|E|) per member column; the measured unit is the
   edge-traversal counter, and each edge is examined at most once per
   member, so the bound is |E| <= |N|+|E| exactly — not asymptotically. *)
let unambiguous_instance_gen =
  QCheck.Gen.(
    oneof
      [ map
          (fun (n, virt) ->
            Families.chain ~n
              ~kind:(if virt then G.Virtual else G.Non_virtual))
          (pair (int_range 2 80) bool);
        map
          (fun (levels, virt) ->
            Families.redeclared_diamond_stack ~levels
              ~kind:(if virt then G.Virtual else G.Non_virtual))
          (pair (int_range 1 14) bool);
        map
          (fun (fanout, depth) -> Families.wide_tree ~fanout ~depth)
          (pair (int_range 2 4) (int_range 1 4)) ])

let unambiguous_instance_arb =
  QCheck.make unambiguous_instance_gen ~print:(fun i ->
      i.Families.description)

let prop_member_column_is_linear =
  QCheck.Test.make ~count:300
    ~name:"per-member edge traversals <= |N|+|E| (unambiguous)"
    unambiguous_instance_arb
    (fun { Families.graph = g; _ } ->
      let m = Metrics.create () in
      ignore (Engine.build_member ~metrics:m (Chg.Closure.compute g) "m");
      let n = G.num_classes g and e = G.num_edges g in
      v m.Metrics.blue_verdicts = 0  (* the family really is unambiguous *)
      && v m.Metrics.classes_visited = n
      && v m.Metrics.edge_traversals <= e
      && v m.Metrics.edge_traversals <= n + e
      && v m.Metrics.o_extensions <= n + e)

let prop_memo_conserves_work =
  (* over any query sequence, fills never exceed the eager column's
     entries, and a second identical sequence is 100% hits *)
  QCheck.Test.make ~count:150 ~name:"memo misses bounded, replay all hits"
    unambiguous_instance_arb
    (fun { Families.graph = g; probe; _ } ->
      let cl = Chg.Closure.compute g in
      let m = Metrics.create () in
      let memo = Memo.create ~metrics:m cl in
      ignore (Memo.lookup memo probe "m");
      ignore (Memo.lookup memo probe "m");
      let misses = v m.Metrics.memo_misses in
      ignore (Memo.lookup memo probe "m");
      v m.Metrics.memo_misses = misses
      && Memo.cached_entries memo = misses
      && misses <= G.num_classes g)

let suite =
  [ Alcotest.test_case "counter/timer/sink primitives" `Quick
      test_counter_timer_sink;
    Alcotest.test_case "json output" `Quick test_json_output;
    Alcotest.test_case "engine counters on Figure 9" `Quick
      test_engine_counters;
    Alcotest.test_case "disabled metrics are inert" `Quick
      test_disabled_metrics_inert;
    Alcotest.test_case "red demotion counted" `Quick
      test_red_demotion_counted;
    Alcotest.test_case "memo cache hit/miss accounting" `Quick
      test_memo_cache_hit_accounting;
    Alcotest.test_case "incremental row counters" `Quick
      test_incremental_counters;
    Alcotest.test_case "trace replays Figure 8" `Quick
      test_trace_replays_topologically ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_member_column_is_linear; prop_memo_conserves_work ]
