(* The packed verdict-column table: equivalence with the eager engine
   and the executable specification on random hierarchies, lossless
   conversion both ways, the Ω-coding edge cases, and the parallel
   build's determinism contract (byte-identical tables and snapshots
   for every --jobs). *)

module G = Chg.Graph
module Spec = Subobject.Spec
module A = Lookup_core.Abstraction
module Engine = Lookup_core.Engine
module Packed = Lookup_core.Packed

let members = [ "m"; "n"; "p" ]

(* Seeded family parameters, as in test_props: shrinking stays
   meaningful and every failure reproduces from its parameters. *)
let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members ~seed)
      (tup5 (int_range 1 14) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let instance_arb =
  QCheck.make instance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

(* The tentpole equivalence, 500 cases: the packed table answers every
   (class, member) exactly like the eager boxed engine, and — through
   to_engine — like the path-enumerating specification. *)
let prop_packed_matches_eager_and_spec =
  QCheck.Test.make ~count:500 ~name:"packed = eager engine = spec oracle"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let cl = Chg.Closure.compute g in
      let eager = Engine.build cl in
      let packed = Packed.build cl in
      let unpacked = Packed.to_engine packed in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              Packed.lookup packed c m = Engine.lookup eager c m
              && Packed.resolves_to packed c m = Engine.resolves_to eager c m
              && Engine.agrees_with_spec unpacked
                   ~spec_verdict:(Spec.lookup g c m) c m)
            members)
        (G.classes g))

(* of_engine/to_engine round-trip: verdicts, Members[C] sets, and the
   canonical encoding all survive. *)
let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"of_engine/to_engine round-trip"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let e = Engine.build (Chg.Closure.compute g) in
      let p = Packed.of_engine e in
      let e' = Packed.to_engine p in
      List.for_all
        (fun c ->
          Engine.members e' c = Engine.members e c
          && List.for_all
               (fun m -> Engine.lookup e' c m = Engine.lookup e c m)
               members)
        (G.classes g)
      && String.equal (Packed.encode (Packed.of_engine e')) (Packed.encode p))

(* Ω coding: Ω maps to code n (one past the largest class id), so the
   extreme corners — ldc = n-1 with lv = Ω in the immediate singleton,
   Ω leading a blue/group arena slice — must round-trip exactly. *)
let test_omega_edge_cases () =
  let red ldc lvs = Some (Engine.Red { A.r_ldc = ldc; r_lvs = lvs }) in
  let boxed =
    [| red 2 [ A.Omega ];                  (* max ldc, Ω lv: immediate *)
       Some (Engine.Blue [ A.Omega; A.Lv 0; A.Lv 2 ]);  (* Ω first *)
       red 0 [ A.Omega; A.Lv 1 ];          (* Section-6 group with Ω *)
    |]
  in
  let col = Packed.pack_column boxed in
  Alcotest.(check bool) "unpack = original" true
    (Packed.unpack_column col = boxed);
  Array.iteri
    (fun c v ->
      Alcotest.(check bool)
        (Printf.sprintf "column_get %d" c)
        true
        (Packed.column_get col c = v))
    boxed;
  Alcotest.(check (option int)) "resolves_to max ldc" (Some 2)
    (Packed.column_resolves_to col 0);
  Alcotest.(check (option int)) "blue does not resolve" None
    (Packed.column_resolves_to col 1);
  (* a single-class column: the only class id is 0 and Ω codes as 1 *)
  let tiny = Packed.pack_column [| red 0 [ A.Omega ] |] in
  Alcotest.(check bool) "1-class Ω round-trip" true
    (Packed.unpack_column tiny = [| red 0 [ A.Omega ] |])

(* The determinism contract: the packed table — and a snapshot carrying
   its columns — is byte-identical whatever the domain count. *)
let test_parallel_determinism () =
  let i =
    Hiergen.Families.random_dag ~n:60 ~max_bases:3 ~virtual_prob:0.3
      ~declare_prob:0.3
      ~members:(List.init 8 (fun k -> Printf.sprintf "m%d" k))
      ~seed:123
  in
  let g = i.Hiergen.Families.graph in
  let cl = Chg.Closure.compute g in
  let snapshot_bytes table =
    Store.Snapshot.encode
      { Store.Snapshot.s_session = "det";
        s_epoch = 0;
        s_protocol = "cxxlookup-rpc/1";
        s_graph = g;
        s_columns = Packed.columns table }
  in
  let reference = Packed.build ~jobs:1 cl in
  let ref_enc = Packed.encode reference in
  let ref_snap = snapshot_bytes reference in
  List.iter
    (fun jobs ->
      let table = Packed.build ~jobs cl in
      Alcotest.(check bool)
        (Printf.sprintf "table bytes identical (jobs=%d)" jobs)
        true
        (String.equal (Packed.encode table) ref_enc);
      Alcotest.(check bool)
        (Printf.sprintf "snapshot bytes identical (jobs=%d)" jobs)
        true
        (String.equal (snapshot_bytes table) ref_snap))
    [ 2; 4; 7 ]

(* Parallel workers run with private metrics bags merged at join: the
   counter totals must not depend on the schedule either. *)
let test_parallel_metrics_merge () =
  let module Metrics = Lookup_core.Metrics in
  let i =
    Hiergen.Families.random_dag ~n:40 ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.4
      ~members:(List.init 6 (fun k -> Printf.sprintf "m%d" k))
      ~seed:5
  in
  let cl = Chg.Closure.compute i.Hiergen.Families.graph in
  let counters jobs =
    let metrics = Metrics.create () in
    ignore (Packed.build ~jobs ~metrics cl);
    Telemetry.Json.to_string (Metrics.counters_json metrics)
  in
  let reference = counters 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "merged counters (jobs=%d)" jobs)
        reference (counters jobs))
    [ 2; 4 ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_packed_matches_eager_and_spec; prop_roundtrip ]
  @ [ Alcotest.test_case "Ω coding edge cases" `Quick test_omega_edge_cases;
      Alcotest.test_case "parallel determinism" `Quick
        test_parallel_determinism;
      Alcotest.test_case "parallel metrics merge" `Quick
        test_parallel_metrics_merge ]
