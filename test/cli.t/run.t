CLI integration tests over the paper's Figure 9 program.

  $ cat > fig9.cpp <<'CPP'
  > struct S  { int m; };
  > struct A : virtual S { int m; };
  > struct B : virtual S { int m; };
  > struct C : virtual A, virtual B { int m; };
  > struct D : C {};
  > struct E : virtual A, virtual B, D {};
  > int main() { E e; e.m = 10; }
  > CPP

The headline lookup: unambiguous, resolves to C::m (g++ 2.7 got this wrong).

  $ cxxlookup lookup fig9.cpp E m
  lookup(E, m) = red (C, Ω)
  definition path: C-D-E

Static resolution of every access in the program.

  $ cxxlookup check fig9.cpp
  7:21: E::m -> C::m via C-D-E
  ok

The whole lookup table.

  $ cxxlookup table fig9.cpp
  S              m          red (S, Ω)
  A              m          red (A, Ω)
  B              m          red (B, Ω)
  C              m          red (C, Ω)
  D              m          red (C, Ω)
  E              m          red (C, Ω)

Execution through the staged-lookup runtime.

  $ cxxlookup run fig9.cpp
  alloc   obj0 : E (72 bytes)
  write   obj0.[C-D-E] C::m = 10

Subobject counts from the closed form.

  $ cxxlookup count fig9.cpp
  S                    1 subobjects
  A                    2 subobjects
  B                    2 subobjects
  C                    4 subobjects
  D                    5 subobjects
  E                    6 subobjects

No ambiguous lookups anywhere in this hierarchy.

  $ cxxlookup audit fig9.cpp
  no ambiguous lookups

JSON export/import roundtrip preserves the lookup table.

  $ cxxlookup export fig9.cpp > fig9.json
  $ cxxlookup import fig9.json
  S              m          red (S, Ω)
  A              m          red (A, Ω)
  B              m          red (B, Ω)
  C              m          red (C, Ω)
  D              m          red (C, Ω)
  E              m          red (C, Ω)

An ambiguous program is rejected with a located diagnostic.

  $ cat > amb.cpp <<'CPP'
  > struct T { int pos; };
  > struct D1 : T {};
  > struct D2 : T {};
  > struct DD : D1, D2 {};
  > int main() { DD d; d.pos; }
  > CPP
  $ cxxlookup check amb.cpp
  5:22: error: request for member 'pos' is ambiguous in 'DD'
  [1]

A parse error reports its position.

  $ echo "class {" > bad.cpp
  $ cxxlookup lookup bad.cpp X m
  1:7: error: expected identifier but found '{'
  [1]

Slicing keeps only what the seed lookups need.

  $ cxxlookup slice fig9.cpp D::m
  kept 5 classes (dropped 1), dropped 0 member decls, 3 edges
  class S { m }
  class A : virtual S { m }
  class B : virtual S { m }
  class C : virtual A, virtual B { m }
  class D : C {  }

Object layout and vtable of a polymorphic diamond.

  $ cat > streams.cpp <<'CPP'
  > struct ios { int state; virtual void tie(); };
  > struct istream : virtual ios { int gcount; virtual void get(); };
  > struct ostream : virtual ios { virtual void put(); virtual void flush(); };
  > struct iostream : istream, ostream { virtual void flush(); };
  > CPP
  $ cxxlookup layout streams.cpp iostream
  object iostream: 48 bytes
    +0    [iostream]
    +8    [istream-iostream]
    +24   [ostream-iostream]
    +32   [ios]
  
  $ cxxlookup vtable streams.cpp iostream
  vtable for iostream:
    tie          (introduced by ios) -> ios::tie
    get          (introduced by istream) -> istream::get
    put          (introduced by ostream) -> ostream::put
    flush        (introduced by ostream) -> iostream::flush
  

Hierarchy statistics.

  $ cxxlookup stats streams.cpp | head -2
  4 classes, max depth 2, 0 with replicated bases, 0 ambiguous (class, member) pairs
  ios: depth 0, 0 direct / 0 total bases (0 virtual), 1 subobjects

Lookup telemetry: the algorithm's unit operations, measured per engine
(the timer line is elided — wall-clock is not reproducible).

  $ cxxlookup stats fig9.cpp | sed -n '/== lookup telemetry ==/,$p' | grep -v 'build:'
  == lookup telemetry ==
  eager engine (full table):
    classes_visited        6
    members_processed      6
    edge_traversals        4
    o_extensions           4
    dominance_probes       14
    declared_kills         4
    red_verdicts           6
  lazy memo (two passes over every query):
    edge_traversals        4
    o_extensions           4
    dominance_probes       14
    declared_kills         4
    red_verdicts           6
    memo_hits              10
    memo_misses            6
    cached_entries         6
  incremental replay (class by class):
    edge_traversals        4
    o_extensions           4
    dominance_probes       14
    declared_kills         4
    red_verdicts           6
    incr_rows              6
    incr_row_members       6
    incr_closure_bits      25

Restricting stats to one member's column also reports that lookup.

  $ cxxlookup stats fig9.cpp E m | tail -1
  lookup(E, m) = red (C, Ω)

The machine-readable report (cxxlookup-stats/1) carries the same
counters; spot-check the eager engine's propagation units.

  $ cxxlookup stats fig9.cpp --stats-json | sed -n '/"engine"/,/"memo"/p' \
  >   | grep -E '"(edge_traversals|dominance_probes|red_verdicts)"'
        "edge_traversals": 4,
        "dominance_probes": 14,
        "red_verdicts": 6,

The Figure-8 propagation replay: classes visited in topological order,
verdicts flowing across each edge, the combine result per class.

  $ cxxlookup trace fig9.cpp E m
  [0] span_begin span=intern depth=0
  [1] span_end span=intern depth=0
  [2] span_begin span=propagate depth=0
  [3] visit    class=S id=0 members=1
  [4] declare  class=S member=m
  [5] visit    class=A id=1 members=1
  [6] declare  class=A member=m
  [7] visit    class=B id=2 members=1
  [8] declare  class=B member=m
  [9] visit    class=C id=3 members=1
  [10] declare  class=C member=m
  [11] visit    class=D id=4 members=1
  [12] flow     from=C to=D via=non-virtual member=m verdict=red (C, Ω)
  [13] verdict  class=D member=m color=red verdict=red (C, Ω)
  [14] visit    class=E id=5 members=1
  [15] flow     from=A to=E via=virtual member=m verdict=red (A, A)
  [16] flow     from=B to=E via=virtual member=m verdict=red (B, B)
  [17] flow     from=D to=E via=non-virtual member=m verdict=red (C, Ω)
  [18] verdict  class=E member=m color=red verdict=red (C, Ω)
  [19] span_end span=propagate depth=0
  lookup(E, m) = red (C, Ω)

The JSON trace (cxxlookup-trace/1) ends on the verdict for the query.

  $ cxxlookup trace fig9.cpp E m --json | grep -c '"event": "flow"'
  4
  $ cxxlookup trace fig9.cpp E m --json | grep -m1 '"verdict"'
    "verdict": "red (C, Ω)",

Graphviz export mentions every class and dashes virtual edges.

  $ cxxlookup dot streams.cpp | grep -c "style=dashed"
  2

Imported JSON can be materialized back as C++ source.

  $ cxxlookup import --cpp fig9.json | head -8
  struct S {
  public:
    int m;
  };
  
  struct A : virtual public S {
  public:
    int m;
