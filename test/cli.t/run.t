CLI integration tests over the paper's Figure 9 program.

  $ cat > fig9.cpp <<'CPP'
  > struct S  { int m; };
  > struct A : virtual S { int m; };
  > struct B : virtual S { int m; };
  > struct C : virtual A, virtual B { int m; };
  > struct D : C {};
  > struct E : virtual A, virtual B, D {};
  > int main() { E e; e.m = 10; }
  > CPP

The headline lookup: unambiguous, resolves to C::m (g++ 2.7 got this wrong).

  $ cxxlookup lookup fig9.cpp E m
  lookup(E, m) = red (C, Ω)
  definition path: C-D-E

The same query under linearized semantics: Python 2.2's L* agrees with
the paper, while C3 rejects E outright — its local precedence order
(A, B before D) contradicts D's own linearization, and the lookup
reports the stuck constraint cycle as a blue set.

  $ cxxlookup lookup fig9.cpp E m --semantics py22
  lookup(E, m) = red (C, Ω)  [py22]
  $ cxxlookup lookup fig9.cpp E m --semantics c3
  lookup(E, m) = blue {A, D}  [c3]

The mro verb prints the linearization itself, or the precedence cycle
that makes it unsolvable (exit 1).

  $ cxxlookup mro fig9.cpp D
  c3(D): D -> C -> A -> B -> S
  $ cxxlookup mro fig9.cpp E
  c3(E): no linearization of E: precedence cycle A < D < A
  [1]
  $ cxxlookup mro fig9.cpp E --semantics py22
  py22(E): E -> D -> C -> A -> B -> S

Static resolution of every access in the program.

  $ cxxlookup check fig9.cpp
  7:21: E::m -> C::m via C-D-E
  ok

The whole lookup table.

  $ cxxlookup table fig9.cpp
  S              m          red (S, Ω)
  A              m          red (A, Ω)
  B              m          red (B, Ω)
  C              m          red (C, Ω)
  D              m          red (C, Ω)
  E              m          red (C, Ω)

Execution through the staged-lookup runtime.

  $ cxxlookup run fig9.cpp
  alloc   obj0 : E (72 bytes)
  write   obj0.[C-D-E] C::m = 10

Subobject counts from the closed form.

  $ cxxlookup count fig9.cpp
  S                    1 subobjects
  A                    2 subobjects
  B                    2 subobjects
  C                    4 subobjects
  D                    5 subobjects
  E                    6 subobjects

No ambiguous lookups anywhere in this hierarchy.

  $ cxxlookup audit fig9.cpp
  no ambiguous lookups

JSON export/import roundtrip preserves the lookup table.

  $ cxxlookup export fig9.cpp > fig9.json
  $ cxxlookup import fig9.json
  S              m          red (S, Ω)
  A              m          red (A, Ω)
  B              m          red (B, Ω)
  C              m          red (C, Ω)
  D              m          red (C, Ω)
  E              m          red (C, Ω)

An ambiguous program is rejected with a located diagnostic.

  $ cat > amb.cpp <<'CPP'
  > struct T { int pos; };
  > struct D1 : T {};
  > struct D2 : T {};
  > struct DD : D1, D2 {};
  > int main() { DD d; d.pos; }
  > CPP
  $ cxxlookup check amb.cpp
  5:22: error: request for member 'pos' is ambiguous in 'DD'
  [1]

A parse error reports its position.

  $ echo "class {" > bad.cpp
  $ cxxlookup lookup bad.cpp X m
  1:7: error: expected identifier but found '{'
  [1]

Slicing keeps only what the seed lookups need.

  $ cxxlookup slice fig9.cpp D::m
  kept 5 classes (dropped 1), dropped 0 member decls, 3 edges
  class S { m }
  class A : virtual S { m }
  class B : virtual S { m }
  class C : virtual A, virtual B { m }
  class D : C {  }

Object layout and vtable of a polymorphic diamond.

  $ cat > streams.cpp <<'CPP'
  > struct ios { int state; virtual void tie(); };
  > struct istream : virtual ios { int gcount; virtual void get(); };
  > struct ostream : virtual ios { virtual void put(); virtual void flush(); };
  > struct iostream : istream, ostream { virtual void flush(); };
  > CPP
  $ cxxlookup layout streams.cpp iostream
  object iostream: 48 bytes
    +0    [iostream]
    +8    [istream-iostream]
    +24   [ostream-iostream]
    +32   [ios]
  
  $ cxxlookup vtable streams.cpp iostream
  vtable for iostream:
    tie          (introduced by ios) -> ios::tie
    get          (introduced by istream) -> istream::get
    put          (introduced by ostream) -> ostream::put
    flush        (introduced by ostream) -> iostream::flush
  

Hierarchy statistics.

  $ cxxlookup stats streams.cpp | head -2
  4 classes, max depth 2, 0 with replicated bases, 0 ambiguous (class, member) pairs
  ios: depth 0, 0 direct / 0 total bases (0 virtual), 1 subobjects

Lookup telemetry: the algorithm's unit operations, measured per engine
(the timer line is elided — wall-clock is not reproducible).

  $ cxxlookup stats fig9.cpp --jobs 1 | sed -n '/== lookup telemetry ==/,$p' | grep -v 'build:'
  == lookup telemetry ==
  eager engine (full table):
    classes_visited        6
    members_processed      6
    edge_traversals        4
    o_extensions           4
    dominance_probes       14
    declared_kills         4
    red_verdicts           6
  lazy memo (two passes over every query):
    edge_traversals        4
    o_extensions           4
    dominance_probes       14
    declared_kills         4
    red_verdicts           6
    memo_hits              10
    memo_misses            6
    cached_entries         6
  incremental replay (class by class):
    edge_traversals        4
    o_extensions           4
    dominance_probes       14
    declared_kills         4
    red_verdicts           6
    incr_rows              6
    incr_row_members       6
    incr_closure_bits      25
  packed table (1 domain):
    m                      80 bytes packed, 352 boxed
    total                  80 bytes packed, 352 boxed

Restricting stats to one member's column also reports that lookup.

  $ cxxlookup stats fig9.cpp E m | tail -1
  lookup(E, m) = red (C, Ω)

The machine-readable report (cxxlookup-stats/1) carries the same
counters; spot-check the eager engine's propagation units.

  $ cxxlookup stats fig9.cpp --stats-json | sed -n '/"engine"/,/"memo"/p' \
  >   | grep -E '"(edge_traversals|dominance_probes|red_verdicts)"'
        "edge_traversals": 4,
        "dominance_probes": 14,
        "red_verdicts": 6,

The Figure-8 propagation replay: classes visited in topological order,
verdicts flowing across each edge, the combine result per class.

  $ cxxlookup trace fig9.cpp E m
  [0] span_begin span=intern depth=0
  [1] span_end span=intern depth=0
  [2] span_begin span=propagate depth=0
  [3] visit    class=S id=0 members=1
  [4] declare  class=S member=m
  [5] visit    class=A id=1 members=1
  [6] declare  class=A member=m
  [7] visit    class=B id=2 members=1
  [8] declare  class=B member=m
  [9] visit    class=C id=3 members=1
  [10] declare  class=C member=m
  [11] visit    class=D id=4 members=1
  [12] flow     from=C to=D via=non-virtual member=m verdict=red (C, Ω)
  [13] verdict  class=D member=m color=red verdict=red (C, Ω)
  [14] visit    class=E id=5 members=1
  [15] flow     from=A to=E via=virtual member=m verdict=red (A, A)
  [16] flow     from=B to=E via=virtual member=m verdict=red (B, B)
  [17] flow     from=D to=E via=non-virtual member=m verdict=red (C, Ω)
  [18] verdict  class=E member=m color=red verdict=red (C, Ω)
  [19] span_end span=propagate depth=0
  lookup(E, m) = red (C, Ω)

The JSON trace (cxxlookup-trace/1) ends on the verdict for the query.

  $ cxxlookup trace fig9.cpp E m --json | grep -c '"event": "flow"'
  4
  $ cxxlookup trace fig9.cpp E m --json | grep -m1 '"verdict"'
    "verdict": "red (C, Ω)",

Graphviz export mentions every class and dashes virtual edges.

  $ cxxlookup dot streams.cpp | grep -c "style=dashed"
  2

Imported JSON can be materialized back as C++ source.

  $ cxxlookup import --cpp fig9.json | head -8
  struct S {
  public:
    int m;
  };
  
  struct A : virtual public S {
  public:
    int m;

The lookup service: one JSON-lines session exercising all six protocol
verbs — open, lookup (repeated past the promotion threshold, so serving
shifts from the memo to a compiled column), batch_lookup, mutate (a new
class, then a member added mid-hierarchy), stats, close.

  $ cat > rpc.jsonl <<'EOF'
  > {"id":1,"op":"open","session":"f","source":"struct S { int m; };\nstruct A : virtual S { int m; };\nstruct B : virtual S { int m; };\nstruct C : virtual A, virtual B { int m; };\nstruct D : C {};\nstruct E : virtual A, virtual B, D {};"}
  > {"id":2,"op":"lookup","session":"f","class":"E","member":"m"}
  > {"id":3,"op":"lookup","session":"f","class":"D","member":"m"}
  > {"id":4,"op":"lookup","session":"f","class":"C","member":"m"}
  > {"id":5,"op":"lookup","session":"f","class":"E","member":"m"}
  > {"id":6,"op":"batch_lookup","session":"f","queries":[{"class":"S","member":"m"},{"class":"A","member":"m"},{"class":"E","member":"zz"}]}
  > {"id":7,"op":"mutate","session":"f","add_class":{"name":"F","bases":[{"class":"E"}],"members":[{"name":"n"}]}}
  > {"id":8,"op":"lookup","session":"f","class":"F","member":"m"}
  > {"id":9,"op":"mutate","session":"f","add_member":{"class":"D","member":{"name":"m"}}}
  > {"id":10,"op":"lookup","session":"f","class":"E","member":"m"}
  > {"id":11,"op":"stats","session":"f"}
  > {"id":12,"op":"close","session":"f"}
  > {"id":13,"op":"lookup","session":"f","class":"E","member":"m"}
  > EOF
  $ cxxlookup serve --jobs 1 < rpc.jsonl
  {"id":1,"ok":true,"protocol":"cxxlookup-rpc/1","session":"f","classes":6,"edges":8,"members":1}
  {"id":2,"ok":true,"class":"E","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"memo"}
  {"id":3,"ok":true,"class":"D","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"memo"}
  {"id":4,"ok":true,"class":"C","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"memo"}
  {"id":5,"ok":true,"class":"E","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"table"}
  {"id":6,"ok":true,"results":[{"class":"S","member":"m","verdict":"red","resolves_to":"S","detail":"red (S, Ω)","via":"table"},{"class":"A","member":"m","verdict":"red","resolves_to":"A","detail":"red (A, Ω)","via":"table"},{"class":"E","member":"zz","verdict":"none","via":"memo"}],"resolved":2,"ambiguous":0,"not_found":1}
  {"id":7,"ok":true,"session":"f","added":"F","classes":7,"epoch":1}
  {"id":8,"ok":true,"class":"F","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"table"}
  {"id":9,"ok":true,"session":"f","class":"D","member":"m","rows_recomputed":3,"table_invalidated":true,"epoch":2}
  {"id":10,"ok":true,"class":"E","member":"m","verdict":"red","resolves_to":"D","detail":"red (D, Ω)","via":"memo"}
  {"id":11,"ok":true,"protocol":"cxxlookup-rpc/1","session":"f","epoch":2,"stats":{"session":"f","classes":7,"edges":9,"members":2,"epoch":2,"domains":1,"counters":{"lookups":9,"resolved":8,"ambiguous":0,"not_found":1,"mutations":2},"table":{"entries":0,"bytes":0,"boxed_bytes":0,"hit_ratio_pct":44,"table_hits":4,"table_misses":5,"table_promotions":1,"table_evictions":0,"table_invalidations":1,"columns":[]},"memo":{"cached_entries":4}}}
  {"id":12,"ok":true,"session":"f","closed":true}
  {"id":13,"ok":false,"error":{"code":"unknown_session","message":"no open session \"f\""}}

Service-level stats (no session argument) aggregate over the run; a
fresh server has clean counters.  The uptime is wall-clock, so it is
normalized here; the per-verb and per-error-code maps count only the
requests seen so far (the stats request itself is tallied after it is
answered).

  $ echo '{"id":0,"op":"stats"}' | cxxlookup serve | sed 's/"uptime_ns":[0-9]*/"uptime_ns":0/'
  {"id":0,"ok":true,"protocol":"cxxlookup-rpc/1","service":{"requests":1,"errors":0,"sessions_opened":0,"sessions_closed":0,"lookups":0,"batch_requests":0,"batch_queries":0,"mutations":0,"lints":0,"sessions_open":0,"uptime_ns":0,"verbs":{},"error_codes":{},"net":{"connections_active":0,"connections_accepted":0,"connections_closed":0,"connections_timed_out":0,"admission_queue_depth":0,"overloaded":0}},"sessions":[]}

Malformed input is answered in-band, line by line, never fatally.

  $ cxxlookup serve <<'EOF'
  > not json
  > {"id":1,"op":"frobnicate"}
  > {"id":2,"rpc":"cxxlookup-rpc/9","op":"stats"}
  > EOF
  {"id":null,"ok":false,"error":{"code":"parse_error","message":"JSON error at offset 0: invalid literal (expected null)"}}
  {"id":1,"ok":false,"error":{"code":"unknown_op","message":"unknown op \"frobnicate\""}}
  {"id":2,"ok":false,"error":{"code":"bad_version","message":"this server speaks cxxlookup-rpc/1"}}

Batch replay: a hierarchy file plus one query per line (defaults are
injected: each line becomes a lookup against the opened session), with
the session stats appended.

  $ cat > queries.jsonl <<'EOF'
  > {"class":"E","member":"m"}
  > {"class":"D","member":"m"}
  > {"class":"E","member":"m"}
  > {"class":"E","member":"m"}
  > EOF
  $ cxxlookup batch --jobs 1 fig9.json queries.jsonl
  {"id":"open","ok":true,"protocol":"cxxlookup-rpc/1","session":"s0","classes":6,"edges":8,"members":1}
  {"id":"q0","ok":true,"class":"E","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"memo"}
  {"id":"q1","ok":true,"class":"D","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"memo"}
  {"id":"q2","ok":true,"class":"E","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"memo"}
  {"id":"q3","ok":true,"class":"E","member":"m","verdict":"red","resolves_to":"C","detail":"red (C, Ω)","via":"table"}
  {"id":"stats","ok":true,"protocol":"cxxlookup-rpc/1","session":"s0","epoch":0,"stats":{"session":"s0","classes":6,"edges":8,"members":1,"epoch":0,"domains":1,"counters":{"lookups":4,"resolved":4,"ambiguous":0,"not_found":0,"mutations":0},"table":{"entries":1,"bytes":80,"boxed_bytes":352,"hit_ratio_pct":25,"table_hits":1,"table_misses":3,"table_promotions":1,"table_evictions":0,"table_invalidations":0,"columns":[{"member":"m","bytes":80,"boxed_bytes":352}]},"memo":{"cached_entries":6}}}

A failing query fails the whole batch: in-band errors surface in the
exit code, so replay scripts cannot silently half-succeed.

  $ cat > badq.jsonl <<'EOF'
  > {"class":"E","member":"m"}
  > {"class":"Nope","member":"m"}
  > EOF
  $ cxxlookup batch fig9.json badq.jsonl > bad_out.jsonl; echo "exit: $?"
  exit: 1
  $ grep -o '"code":"[a-z_]*"' bad_out.jsonl
  "code":"unknown_class"

Durable sessions: under --store every open writes a snapshot and every
mutation appends to a write-ahead log; the snapshot verb compacts the
log into a fresh snapshot on demand.

  $ cxxlookup serve --store store.d <<'EOF'
  > {"id":1,"op":"open","session":"f","source":"struct S { int m; }; struct A : virtual S { int m; };"}
  > {"id":2,"op":"mutate","session":"f","add_class":{"name":"B","bases":[{"class":"A"}],"members":[]}}
  > {"id":3,"op":"snapshot","session":"f"}
  > {"id":4,"op":"mutate","session":"f","add_member":{"class":"S","member":{"name":"n"}}}
  > EOF
  {"id":1,"ok":true,"protocol":"cxxlookup-rpc/1","session":"f","classes":2,"edges":1,"members":1}
  {"id":2,"ok":true,"session":"f","added":"B","classes":3,"epoch":1}
  {"id":3,"ok":true,"session":"f","epoch":1,"bytes":192}
  {"id":4,"ok":true,"session":"f","class":"S","member":"n","rows_recomputed":3,"table_invalidated":false,"epoch":2}

A restarted server over the same directory recovers the session —
newest snapshot plus the WAL tail — and serves it seamlessly; close
keeps the durable state, and the restore verb reopens it.

  $ cxxlookup serve --store store.d 2>recover.log <<'EOF'
  > {"id":5,"op":"lookup","session":"f","class":"B","member":"n"}
  > {"id":6,"op":"close","session":"f"}
  > {"id":7,"op":"restore","session":"f"}
  > {"id":8,"op":"lookup","session":"f","class":"B","member":"n"}
  > EOF
  {"id":5,"ok":true,"class":"B","member":"n","verdict":"red","resolves_to":"S","detail":"red (S, S)","via":"memo"}
  {"id":6,"ok":true,"session":"f","closed":true}
  {"id":7,"ok":true,"protocol":"cxxlookup-rpc/1","session":"f","epoch":2,"classes":3,"replayed":1,"torn_tail":false}
  {"id":8,"ok":true,"class":"B","member":"n","verdict":"red","resolves_to":"S","detail":"red (S, S)","via":"memo"}
  $ cat recover.log
  recovered session "f": epoch 2, 1 replayed

The offline subcommands inspect and compact a store without serving:
restore reports what recovery would reconstruct, snapshot folds the WAL
into a fresh snapshot file (after which there is nothing left to
replay).

  $ cxxlookup restore store.d
  {"id":"f","ok":true,"protocol":"cxxlookup-rpc/1","session":"f","epoch":2,"classes":3,"replayed":1,"torn_tail":false}
  $ cxxlookup snapshot store.d 2>/dev/null
  {"id":"f","ok":true,"session":"f","epoch":2,"bytes":208}
  $ cxxlookup restore store.d
  {"id":"f","ok":true,"protocol":"cxxlookup-rpc/1","session":"f","epoch":2,"classes":3,"replayed":0,"torn_tail":false}
  $ cxxlookup restore store.d ghost
  {"id":"ghost","ok":false,"error":{"code":"store_error","message":"nothing stored under session \"ghost\""}}
  [1]

The durability verbs without --store answer with a structured error.

  $ cxxlookup serve <<'EOF'
  > {"id":1,"op":"restore","session":"f"}
  > EOF
  {"id":1,"ok":false,"error":{"code":"store_error","message":"no store configured (run: cxxlookup serve --store DIR)"}}

The version line names the binary and the protocol it speaks.

  $ cxxlookup --version
  cxxlookup 1.0.0 (protocol cxxlookup-rpc/1)

Request tracing: --trace records a request event and an rpc span pair
per request on the telemetry sink (stderr; timestamps elided by design).

  $ cxxlookup serve --trace < rpc.jsonl 2>&1 >/dev/null | head -6
  [0] request  op=open session=f
  [1] span_begin span=rpc:open depth=0
  [2] span_end span=rpc:open depth=0
  [3] request  op=lookup session=f
  [4] span_begin span=rpc:lookup depth=0
  [5] span_end span=rpc:lookup depth=0
