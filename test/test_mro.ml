(* Tests for the linearized lookup semantics (lib/mro): C3 / Python-2.2 /
   Dylan linearizations on the paper's figures, failure witnesses on
   hierarchies whose precedence constraints are cyclic, the Engine-shaped
   MRO table (including packed hosting), and cross-semantics QCheck
   invariants: every semantics agrees on single-inheritance hierarchies,
   C3 successes are topological orders of the superclass DAG, and every
   divergence the linter reports is confirmed by direct evaluation of
   both engines. *)

module G = Chg.Graph
module Path = Subobject.Path
module Spec = Subobject.Spec
module Engine = Lookup_core.Engine
module Abs = Lookup_core.Abstraction
module Packed = Lookup_core.Packed

let nv = G.Non_virtual
let pub = G.Public

let build decls =
  let b = G.create_builder () in
  List.iter
    (fun (name, bases, members) ->
      ignore
        (G.add_class b name
           ~bases:(List.map (fun bn -> (bn, nv, pub)) bases)
           ~members:(List.map G.member members)))
    decls;
  G.freeze b

let lin_names g t cls =
  match Mro.linearization t (G.find g cls) with
  | Ok l -> List.map (G.name g) l
  | Error _ -> Alcotest.failf "linearization of %s unexpectedly failed" cls

let resolves g t cls m =
  Option.map (G.name g) (Mro.resolves_to t (G.find g cls) m)

(* Strict-ancestor set by DFS over the base lists (small test graphs). *)
let ancestors g c =
  let seen = Hashtbl.create 16 in
  let rec go c =
    List.iter
      (fun (b : G.base) ->
        if not (Hashtbl.mem seen b.G.b_class) then begin
          Hashtbl.add seen b.G.b_class ();
          go b.G.b_class
        end)
      (G.bases g c)
  in
  go c;
  seen

(* -- figure units --------------------------------------------------- *)

let test_fig1 () =
  (* fig1 is the showcase divergence: C++ lookup(E, m) is ambiguous, but
     every linearization resolves it to D::m. *)
  let g = Hiergen.Figures.fig1 () in
  let c3 = Mro.compute Mro.C3 g in
  Alcotest.(check (list string)) "C3(E)" [ "E"; "C"; "D"; "B"; "A" ]
    (lin_names g c3 "E");
  Alcotest.(check (option string)) "c3 E::m" (Some "D") (resolves g c3 "E" "m");
  (match Spec.lookup g (G.find g "E") "m" with
  | Spec.Ambiguous _ -> ()
  | _ -> Alcotest.fail "C++ lookup(E, m) should be ambiguous");
  List.iter
    (fun v ->
      Alcotest.(check (option string))
        (Mro.variant_string v ^ " E::m") (Some "D")
        (resolves g (Mro.compute v g) "E" "m"))
    Mro.variants

let test_fig2_all_agree () =
  (* With the virtual diamond the C++ verdict (D::m) and every MRO
     agree, on every class. *)
  let g = Hiergen.Figures.fig2 () in
  List.iter
    (fun v ->
      let t = Mro.compute v g in
      G.iter_classes g (fun c ->
          match Spec.lookup g c "m" with
          | Spec.Resolved p ->
            Alcotest.(check (option string))
              (Printf.sprintf "%s %s::m" (Mro.variant_string v) (G.name g c))
              (Some (G.name g (Path.ldc p)))
              (resolves g t (G.name g c) "m")
          | _ -> ()))
    Mro.variants

let test_fig9_c3_unsolvable () =
  (* Figure 9's E : virtual A, virtual B, D is the classic C3
     monotonicity rejection: E's local order wants A before D while D's
     linearization puts D before A.  Python 2.2's L* shrugs and agrees
     with the paper's C++ verdict (C::m). *)
  let g = Hiergen.Figures.fig9 () in
  let c3 = Mro.compute Mro.C3 g in
  let e = G.find g "E" in
  (match Mro.linearization c3 e with
  | Ok _ -> Alcotest.fail "C3(E) should be unsolvable on fig9"
  | Error f ->
    Alcotest.(check string) "failure originates at E" "E"
      (G.name g f.Mro.fl_class);
    Alcotest.(check (list string)) "witness cycle" [ "A"; "D" ]
      (List.sort compare (List.map (G.name g) f.Mro.fl_cycle)));
  (* the failed class still answers lookups: Blue of the cycle classes *)
  (match Mro.lookup c3 e "m" with
  | Some (Engine.Blue lvs) ->
    Alcotest.(check (list string)) "blue set = cycle" [ "A"; "D" ]
      (List.filter_map
         (function Abs.Lv c -> Some (G.name g c) | Abs.Omega -> None)
         lvs)
  | _ -> Alcotest.fail "lookup on the failed class should be Blue");
  Alcotest.(check (option string)) "absent member stays absent" None
    (Option.map (fun _ -> "present") (Mro.lookup c3 e "zzz"));
  (* D's linearization is fine, and resolves m like the paper does *)
  Alcotest.(check (list string)) "C3(D)" [ "D"; "C"; "A"; "B"; "S" ]
    (lin_names g c3 "D");
  let py = Mro.compute Mro.Py22 g in
  Alcotest.(check (list string)) "py22(E) total"
    [ "E"; "D"; "C"; "A"; "B"; "S" ]
    (lin_names g py "E");
  Alcotest.(check (option string)) "py22 agrees with C++ on E::m" (Some "C")
    (resolves g py "E" "m")

let test_constraint_cycle_witness () =
  (* A : X, Y and B : Y, X impose opposite local precedence on X and Y;
     C : A, B has no C3 linearization.  The witness names exactly the
     doubly-constrained pair, and a derived class inherits the failure
     record with the originating class — not itself — as fl_class. *)
  let g =
    build
      [ ("X", [], [ "m" ]); ("Y", [], [ "m" ]);
        ("A", [ "X"; "Y" ], []); ("B", [ "Y"; "X" ], []);
        ("C", [ "A"; "B" ], []); ("D", [ "C" ], []) ]
  in
  let c3 = Mro.compute Mro.C3 g in
  Alcotest.(check (list string)) "C3(A)" [ "A"; "X"; "Y" ] (lin_names g c3 "A");
  Alcotest.(check (list string)) "C3(B)" [ "B"; "Y"; "X" ] (lin_names g c3 "B");
  (match Mro.linearization c3 (G.find g "C") with
  | Ok _ -> Alcotest.fail "C3(C) should be unsolvable"
  | Error f ->
    Alcotest.(check string) "originating class" "C" (G.name g f.Mro.fl_class);
    Alcotest.(check (list string)) "cycle = {X, Y}" [ "X"; "Y" ]
      (List.sort compare (List.map (G.name g) f.Mro.fl_cycle)));
  (match Mro.linearization c3 (G.find g "D") with
  | Ok _ -> Alcotest.fail "C3(D) should inherit C's failure"
  | Error f ->
    Alcotest.(check string) "poisoned failure keeps its origin" "C"
      (G.name g f.Mro.fl_class));
  (* Python 2.2 is total on the same hierarchy (keeping last occurrences) *)
  let py = Mro.compute Mro.Py22 g in
  Alcotest.(check (list string)) "py22(C)" [ "C"; "A"; "B"; "Y"; "X" ]
    (lin_names g py "C")

let test_engine_roundtrip () =
  (* The Engine-shaped MRO table answers exactly like the direct lookup,
     for every figure, variant, class and member — including when packed
     into the compressed column representation. *)
  List.iter
    (fun g ->
      let cl = Chg.Closure.compute g in
      List.iter
        (fun v ->
          let t = Mro.compute v g in
          let eng = Mro.engine cl v in
          let packed = Packed.of_engine eng in
          G.iter_classes g (fun c ->
              List.iter
                (fun m ->
                  let direct = Mro.lookup t c m in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s::%s engine" (Mro.variant_string v)
                       (G.name g c) m)
                    true
                    (Engine.lookup eng c m = direct);
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s::%s packed" (Mro.variant_string v)
                       (G.name g c) m)
                    true
                    (Packed.lookup packed c m = direct))
                (G.member_names g)))
        Mro.variants)
    [ Hiergen.Figures.fig1 (); Hiergen.Figures.fig2 ();
      Hiergen.Figures.fig3 (); Hiergen.Figures.fig9 () ]

(* -- QCheck cross-semantics invariants ------------------------------ *)

let members = [ "m"; "n"; "p" ]

let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members ~seed)
      (tup5 (int_range 1 14) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let instance_arb =
  QCheck.make instance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

(* Single-inheritance hierarchies are where every semantics must agree:
   each class has one lookup path, so C++ dominance, all three MROs and
   the Eiffel-style topological shortcut resolve identically. *)
let single_inheritance_gen =
  QCheck.Gen.(
    map
      (fun (pick, n, fanout, depth) ->
        if pick then Hiergen.Families.chain ~n ~kind:G.Non_virtual
        else Hiergen.Families.wide_tree ~fanout ~depth)
      (tup4 bool (int_range 1 20) (int_range 2 3) (int_range 1 4)))

let single_inheritance_arb =
  QCheck.make single_inheritance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

let prop_single_inheritance_all_agree =
  QCheck.Test.make ~count:300
    ~name:"single inheritance: cpp = c3 = py22 = dylan = topo"
    single_inheritance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let tables = List.map (fun v -> Mro.compute v g) Mro.variants in
      let topo = Baselines.Topo_lookup.prepare g in
      List.for_all
        (fun c ->
          let expected =
            match Spec.lookup g c "m" with
            | Spec.Resolved p -> Some (Path.ldc p)
            | Spec.Undeclared -> None
            | Spec.Ambiguous _ -> Alcotest.fail "ambiguity in a tree?"
          in
          List.for_all
            (fun t -> Mro.resolves_to t c "m" = expected)
            tables
          && Baselines.Topo_lookup.resolve topo c "m" = expected)
        (G.classes g))

let prop_c3_success_is_topological =
  QCheck.Test.make ~count:400
    ~name:"C3 success = topological order of the superclass DAG"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let t = Mro.compute Mro.C3 g in
      List.for_all
        (fun c ->
          match Mro.linearization t c with
          | Error _ -> true
          | Ok lin ->
            let anc = ancestors g c in
            let arr = Array.of_list lin in
            let topological = ref true in
            (* derived classes precede their bases: no strict ancestor of
               any element may appear before it *)
            Array.iteri
              (fun i x ->
                let anc_x = ancestors g x in
                Array.iteri
                  (fun j y ->
                    if j < i && Hashtbl.mem anc_x y then topological := false)
                  arr)
              arr;
            (* c first, then every strict ancestor exactly once *)
            List.hd lin = c
            && List.length lin = Hashtbl.length anc + 1
            && List.for_all (fun x -> x = c || Hashtbl.mem anc x) lin
            && !topological)
        (G.classes g))

let prop_py22_total =
  QCheck.Test.make ~count:300 ~name:"py22 is total and covers the DAG"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let t = Mro.compute Mro.Py22 g in
      List.for_all
        (fun c ->
          match Mro.linearization t c with
          | Error _ -> false
          | Ok lin ->
            let anc = ancestors g c in
            List.hd lin = c
            && List.length lin = Hashtbl.length anc + 1
            && List.sort_uniq compare lin = List.sort compare lin)
        (G.classes g))

let verdicts_diverge cpp mro =
  (* mirror of the linter's firing condition, evaluated independently *)
  match (cpp, mro) with
  | Some (Engine.Red a), Some (Engine.Red b) ->
    a.Abs.r_ldc <> b.Abs.r_ldc
  | Some (Engine.Blue _), Some (Engine.Red _)
  | Some (Engine.Red _), Some (Engine.Blue _) -> true
  | _ -> false

let prop_divergence_confirmed =
  QCheck.Test.make ~count:300
    ~name:"every semantics-divergence finding reproduces on both engines"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let cl = Chg.Closure.compute g in
      let config =
        { Lint.default_config with
          rules = [ Lint.Rule.Semantics_divergence ] }
      in
      let findings = Lint.run ~config cl in
      let cpp = Engine.build cl in
      let c3 = Mro.engine cl Mro.C3 in
      List.for_all
        (fun (f : Lint.finding) ->
          match f.Lint.f_member with
          | None -> false
          | Some m ->
            let c = G.find g f.Lint.f_class in
            f.Lint.f_baseline = Some "c3"
            && verdicts_diverge (Engine.lookup cpp c m) (Engine.lookup c3 c m))
        findings)

let suite =
  [ Alcotest.test_case "fig1: C++ ambiguous, MROs resolve D" `Quick test_fig1;
    Alcotest.test_case "fig2: all semantics agree" `Quick test_fig2_all_agree;
    Alcotest.test_case "fig9: C3 unsolvable, py22 = C++" `Quick
      test_fig9_c3_unsolvable;
    Alcotest.test_case "constraint-cycle witness" `Quick
      test_constraint_cycle_witness;
    Alcotest.test_case "engine/packed round-trip" `Quick test_engine_roundtrip;
    QCheck_alcotest.to_alcotest prop_single_inheritance_all_agree;
    QCheck_alcotest.to_alcotest prop_c3_success_is_topological;
    QCheck_alcotest.to_alcotest prop_py22_total;
    QCheck_alcotest.to_alcotest prop_divergence_confirmed ]
