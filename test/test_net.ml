(* Tests for the networked server: the backpressure primitives
   (Bqueue, Rwlock), protocol hardening over real sockets (pipelining
   order, oversized lines, torn lines at the idle timeout, explicit
   overload), and a QCheck property that concurrent read mixes over K
   connections match the spec oracle. *)

module G = Chg.Graph
module J = Chg.Json
module Path = Subobject.Path
module Spec = Subobject.Spec
module W = Hiergen.Workload
module Server = Service.Server
module Bqueue = Net.Bqueue
module Rwlock = Net.Rwlock

(* ---- Bqueue ---- *)

let test_bqueue_order_and_bounds () =
  let q = Bqueue.create 4 in
  List.iter (fun i -> Alcotest.(check bool) "push" true (Bqueue.push q i))
    [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "try_push refused when full" false (Bqueue.try_push q 5);
  Alcotest.(check int) "length" 4 (Bqueue.length q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Bqueue.try_push q 5);
  Bqueue.close q;
  Alcotest.(check bool) "push refused after close" false (Bqueue.push q 6);
  Alcotest.(check (list (option int))) "drains then None"
    [ Some 2; Some 3; Some 4; Some 5; None ]
    (List.init 5 (fun _ -> Bqueue.pop q));
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Bqueue.create: capacity must be >= 1") (fun () ->
      ignore (Bqueue.create 0))

let test_bqueue_backpressure () =
  (* capacity 1: the producer can only ever be one ahead — every item
     still arrives, in order, through the blocking push *)
  let q = Bqueue.create 1 in
  let n = 200 in
  let producer =
    Thread.create
      (fun () ->
        for i = 1 to n do
          ignore (Bqueue.push q i)
        done;
        Bqueue.close q)
      ()
  in
  let got = ref [] in
  let rec drain () =
    match Bqueue.pop q with
    | Some x ->
      got := x :: !got;
      drain ()
    | None -> ()
  in
  drain ();
  Thread.join producer;
  Alcotest.(check (list int)) "all items, in order"
    (List.init n (fun i -> i + 1))
    (List.rev !got)

(* ---- Rwlock ---- *)

let test_rwlock_writer_exclusive () =
  let lock = Rwlock.create () in
  let counter = ref 0 in
  (* non-atomic increments stay exact only if writers really exclude
     each other *)
  let writers =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 1000 do
              Rwlock.with_write lock (fun () ->
                  let v = !counter in
                  Thread.yield ();
                  counter := v + 1)
            done)
          ())
  in
  List.iter Thread.join writers;
  Alcotest.(check int) "every write observed" 4000 !counter

let test_rwlock_readers_concurrent () =
  let lock = Rwlock.create () in
  let inside = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let readers =
    List.init 2 (fun _ ->
        Thread.create
          (fun () ->
            Rwlock.with_read lock (fun () ->
                let now = 1 + Atomic.fetch_and_add inside 1 in
                if now > Atomic.get peak then Atomic.set peak now;
                (* give the other reader time to enter *)
                Thread.delay 0.05;
                Atomic.decr inside))
          ())
  in
  List.iter Thread.join readers;
  Alcotest.(check int) "both readers held it at once" 2 (Atomic.get peak)

(* ---- a live server on an ephemeral port ---- *)

let fig9_source =
  In_channel.with_open_text "../examples/fig9.cpp" In_channel.input_all

let with_server ?(config = Net.Server.default_config) f =
  let srv = Server.create () in
  let net = Net.Server.create ~config srv (Net.Server.Tcp ("127.0.0.1", 0)) in
  let th = Thread.create Net.Server.run net in
  let addr = Net.Server.bound_addr net in
  Fun.protect
    ~finally:(fun () ->
      Net.Server.stop net;
      Thread.join th)
    (fun () -> f addr)

let ok_resp line =
  match J.of_string line with
  | Ok j -> J.member "ok" j = Ok (J.Bool true)
  | Error _ -> false

let error_code line =
  match J.of_string line with
  | Ok j ->
    (match J.member "error" j with
    | Ok e ->
      (match J.member "code" e with Ok (J.String s) -> s | _ -> "?")
    | Error _ -> "?")
  | Error _ -> "?"

let open_line ?(session = "s") source =
  J.to_string
    (J.Obj
       [ ("id", J.Int 0); ("op", J.String "open");
         ("session", J.String session); ("source", J.String source) ])

let lookup_line ~session ~id ~cls ~member =
  J.to_string
    (J.Obj
       [ ("id", J.Int id); ("op", J.String "lookup");
         ("session", J.String session); ("class", J.String cls);
         ("member", J.String member) ])

let must_recv cl =
  match Net.Client.recv_line cl with
  | Some l -> l
  | None -> Alcotest.fail "server closed unexpectedly"

(* ---- protocol hardening over real sockets ---- *)

let test_pipelining_order () =
  with_server @@ fun addr ->
  let cl = Net.Client.connect addr in
  Net.Client.send_line cl (open_line fig9_source);
  Alcotest.(check bool) "open ok" true (ok_resp (must_recv cl));
  let n = 40 in
  (* fire the whole burst before reading anything: responses must come
     back in request order, ids echoed *)
  for i = 1 to n do
    Net.Client.send_line cl
      (lookup_line ~session:"s" ~id:i ~cls:"E" ~member:"m")
  done;
  for i = 1 to n do
    let resp = must_recv cl in
    Alcotest.(check bool) (Printf.sprintf "response %d ok" i) true
      (ok_resp resp);
    match J.of_string resp with
    | Ok j ->
      Alcotest.(check bool) (Printf.sprintf "id %d echoed in order" i) true
        (J.member "id" j = Ok (J.Int i))
    | Error e -> Alcotest.failf "bad response: %s" e
  done;
  Net.Client.close cl

let test_oversized_line_survives () =
  let config = { Net.Server.default_config with max_line = 128 } in
  with_server ~config @@ fun addr ->
  let cl = Net.Client.connect addr in
  Net.Client.send_line cl (String.make 4096 'x');
  let resp = must_recv cl in
  Alcotest.(check string) "oversized answered bad_request" "bad_request"
    (error_code resp);
  (* the connection survived: a well-formed request still answers *)
  Net.Client.send_line cl {|{"id":7,"op":"stats"}|};
  let resp = must_recv cl in
  Alcotest.(check bool) "connection alive after oversized line" true
    (ok_resp resp);
  Net.Client.close cl

let net_stat line name =
  match J.of_string line with
  | Ok j ->
    (match
       let ( let* ) = Result.bind in
       let* service = J.member "service" j in
       let* net = J.member "net" service in
       J.member name net
     with
    | Ok (J.Int n) -> n
    | _ -> Alcotest.failf "stats lacks net.%s: %s" name line)
  | Error e -> Alcotest.failf "stats not JSON: %s" e

let test_torn_line_times_out () =
  let config = { Net.Server.default_config with idle_timeout = 0.3 } in
  with_server ~config @@ fun addr ->
  let cl = Net.Client.connect addr in
  (* a complete request first, then a torn partial line, never finished *)
  Net.Client.send_line cl {|{"id":1,"op":"stats"}|};
  Alcotest.(check bool) "first request ok" true (ok_resp (must_recv cl));
  Net.Client.send_line cl {|{"id":2,"op":"stats"}|};
  (* partial line: bytes but no newline — the slowloris shape *)
  Net.Client.send_raw cl {|{"id":3,"op":|};
  (* the pipelined complete request still answers... *)
  Alcotest.(check bool) "pipelined request answered before close" true
    (ok_resp (must_recv cl));
  (* ...then the deadline passes and the server closes cleanly without
     ever executing the torn fragment *)
  Alcotest.(check (option string)) "connection closed at the deadline" None
    (Net.Client.recv_line cl);
  Net.Client.close cl;
  (* other clients are unaffected, and the close is attributed to the
     timeout counters *)
  let cl2 = Net.Client.connect addr in
  Net.Client.send_line cl2 {|{"id":1,"op":"stats"}|};
  let stats = must_recv cl2 in
  Alcotest.(check int) "timed-out counter ticked" 1
    (net_stat stats "connections_timed_out");
  Alcotest.(check int) "no spurious overload" 0 (net_stat stats "overloaded");
  Net.Client.close cl2

let test_overload_explicit () =
  (* queue_depth 0: the admission bound is already exhausted, so every
     parsed request is answered overloaded — deterministically *)
  let config = { Net.Server.default_config with queue_depth = 0 } in
  with_server ~config @@ fun addr ->
  let cl = Net.Client.connect addr in
  Net.Client.send_line cl (open_line fig9_source);
  let resp = must_recv cl in
  Alcotest.(check string) "rejected with overloaded" "overloaded"
    (error_code resp);
  (match J.of_string resp with
  | Ok j ->
    Alcotest.(check bool) "id echoed on rejection" true
      (J.member "id" j = Ok (J.Int 0))
  | Error e -> Alcotest.failf "bad response: %s" e);
  (* the connection survives rejection; the counter is visible — but
     stats is itself a request, so read it through the registry *)
  Net.Client.send_line cl {|{"id":1,"op":"stats"}|};
  Alcotest.(check string) "stats rejected too" "overloaded"
    (error_code (must_recv cl));
  Net.Client.close cl

let test_overload_counter_visible () =
  with_server @@ fun addr ->
  let cl = Net.Client.connect addr in
  (* a max-conns-0-style rejection is hard to time; instead check the
     zero state is reported — the counter's plumbing end to end *)
  Net.Client.send_line cl {|{"id":1,"op":"stats"}|};
  let stats = must_recv cl in
  Alcotest.(check int) "active connections gauge" 1
    (net_stat stats "connections_active");
  Alcotest.(check int) "accepted counter" 1
    (net_stat stats "connections_accepted");
  Alcotest.(check int) "overloaded starts at zero" 0
    (net_stat stats "overloaded");
  Net.Client.close cl

(* ---- QCheck: concurrent read mixes match the spec oracle ---- *)

let qc_members = [ "m"; "n"; "p" ]

let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members:qc_members ~seed)
      (tup5 (int_range 1 12) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let instance_arb =
  QCheck.make instance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

let lookup_matches_spec g (q : W.query) resp =
  match J.of_string resp with
  | Error _ -> false
  | Ok r ->
    let verdict =
      match J.member "verdict" r with
      | Ok (J.String s) -> s
      | _ -> "?"
    in
    (match Spec.lookup_static g q.W.q_class q.W.q_member with
    | Spec.Resolved p ->
      verdict = "red"
      && J.member "resolves_to" r = Ok (J.String (G.name g (Path.ldc p)))
    | Spec.Ambiguous _ -> verdict = "blue"
    | Spec.Undeclared -> verdict = "none")

let prop_concurrent_reads_match_spec =
  QCheck.Test.make ~count:12
    ~name:"concurrent reads over K connections = spec oracle" instance_arb
    (fun { Hiergen.Families.graph = g; _ } ->
      let config = { Net.Server.default_config with workers = 2 } in
      with_server ~config @@ fun addr ->
      let setup = Net.Client.connect addr in
      let opened =
        Net.Client.request setup
          (J.to_string
             (J.Obj
                [ ("id", J.Int 0); ("op", J.String "open");
                  ("session", J.String "q");
                  ("chg", Chg.Serialize.to_json g) ]))
      in
      (match opened with
      | Some r when ok_resp r -> ()
      | _ -> Alcotest.fail "open failed");
      let ws = Array.of_list (W.exhaustive g) in
      let k = 4 in
      let failures = Atomic.make 0 in
      let worker conn_idx =
        let cl = Net.Client.connect addr in
        (* every connection walks the whole workload, phase-shifted, so
           the same columns are hit from several domains at once *)
        Array.iteri
          (fun i _ ->
            let q = ws.((i + conn_idx) mod Array.length ws) in
            let line =
              lookup_line ~session:"q" ~id:i
                ~cls:(G.name g q.W.q_class)
                ~member:q.W.q_member
            in
            match Net.Client.request cl line with
            | Some resp when lookup_matches_spec g q resp -> ()
            | _ -> Atomic.incr failures)
          ws;
        Net.Client.close cl
      in
      let threads =
        List.init k (fun i -> Thread.create (fun () -> worker i) ())
      in
      List.iter Thread.join threads;
      Net.Client.close setup;
      Atomic.get failures = 0)

let suite =
  [ Alcotest.test_case "bqueue order, bounds, close" `Quick
      test_bqueue_order_and_bounds;
    Alcotest.test_case "bqueue blocking backpressure" `Quick
      test_bqueue_backpressure;
    Alcotest.test_case "rwlock writers exclusive" `Quick
      test_rwlock_writer_exclusive;
    Alcotest.test_case "rwlock readers concurrent" `Quick
      test_rwlock_readers_concurrent;
    Alcotest.test_case "pipelined responses in request order" `Quick
      test_pipelining_order;
    Alcotest.test_case "oversized line answers bad_request, conn survives"
      `Quick test_oversized_line_survives;
    Alcotest.test_case "torn line closes cleanly at the idle timeout"
      `Quick test_torn_line_times_out;
    Alcotest.test_case "queue_depth exhaustion answers overloaded" `Quick
      test_overload_explicit;
    Alcotest.test_case "connection gauges visible in stats" `Quick
      test_overload_counter_visible ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_concurrent_reads_match_spec ]
