(* Tests for the hierarchy linter: per-rule behavior on the paper
   figures, renderer contracts (text, JSON, SARIF 2.1.0), and a QCheck
   property tying the ambiguous-lookup rule to the spec oracle. *)

module G = Chg.Graph
module J = Chg.Json
module Spec = Subobject.Spec
module D = Frontend.Diagnostic

let lint ?config g = Lint.run ?config (Chg.Closure.compute g)

let triple f =
  (Lint.Rule.to_string f.Lint.f_rule, f.Lint.f_class, f.Lint.f_member)

let triples fs = List.map triple fs

let of_rule r fs = List.filter (fun f -> f.Lint.f_rule = r) fs

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let triple_t = Alcotest.(list (triple string string (option string)))

(* ---- figure 1: the motivating replicated diamond ------------------- *)

let test_fig1 () =
  let fs = lint (Hiergen.Figures.fig1 ()) in
  Alcotest.(check triple_t)
    "all six-rule findings, deterministic order"
    [ ("dead-member", "D", Some "m");
      ("ambiguous-lookup", "E", Some "m");
      ("replicated-base", "E", None);
      ("replicated-base", "E", None);
      ("virtualize-fix-it", "E", Some "m");
      ("virtualize-fix-it", "E", Some "m");
      ("compiler-divergence", "E", Some "m") ]
    (triples fs);
  (* the ambiguity carries the spec's witness definition paths *)
  let amb = List.hd (of_rule Lint.Rule.Ambiguous_lookup fs) in
  Alcotest.(check bool) "witness paths" true
    (contains amb.Lint.f_diag.D.message "A-B-C-E; D-E");
  Alcotest.(check bool) "error severity" true
    (amb.Lint.f_diag.D.severity = D.Error);
  (* both virtualization candidates: the single edge B->A and the
     all-edges-out-of-B group (paper Figure 2 is the second one applied
     everywhere) *)
  Alcotest.(check (list (option string)))
    "fix-its"
    [ Some "B : virtual A"; Some "C : virtual B; D : virtual B" ]
    (List.map
       (fun f -> f.Lint.f_diag.D.fixit)
       (of_rule Lint.Rule.Virtualize_fixit fs));
  Alcotest.(check (pair int (pair int int)))
    "summary" (1, (2, 4))
    (let e, w, n = Lint.summary fs in
     (e, (w, n)));
  Alcotest.(check bool) "max severity" true
    (Lint.max_severity fs = Some D.Error)

(* ---- figure 2: the virtual variant is ambiguity-free but resolves
   only through dominance --------------------------------------------- *)

let test_fig2 () =
  let fs = lint (Hiergen.Figures.fig2 ()) in
  Alcotest.(check triple_t)
    "only the fragile dominance warning"
    [ ("fragile-dominance", "E", Some "m") ]
    (triples fs);
  let f = List.hd fs in
  Alcotest.(check bool) "warning severity" true
    (f.Lint.f_diag.D.severity = D.Warning);
  Alcotest.(check bool) "qualified-name fix-it" true
    (match f.Lint.f_diag.D.fixit with
    | Some fx -> contains fx "D::m"
    | None -> false)

(* ---- figure 9: the g++ 2.7 counterexample -------------------------- *)

let test_fig9 () =
  let fs = lint (Hiergen.Figures.fig9 ()) in
  Alcotest.(check triple_t)
    "dead virtual-base decls, dominance warning, g++ divergence"
    [ ("dead-member", "S", Some "m");
      ("dead-member", "A", Some "m");
      ("dead-member", "B", Some "m");
      ("fragile-dominance", "E", Some "m");
      ("compiler-divergence", "E", Some "m") ]
    (triples fs);
  let div = List.hd (of_rule Lint.Rule.Compiler_divergence fs) in
  Alcotest.(check bool) "names the buggy compiler" true
    (contains div.Lint.f_diag.D.message "g++ 2.7");
  Alcotest.(check bool) "no ambiguity reported" true
    (of_rule Lint.Rule.Ambiguous_lookup fs = [])

(* ---- clean hierarchies stay clean ---------------------------------- *)

let test_clean () =
  let b = G.create_builder () in
  ignore (G.add_class b "A" ~bases:[] ~members:[ G.member "m" ]);
  ignore
    (G.add_class b "B"
       ~bases:[ ("A", G.Non_virtual, G.Public) ]
       ~members:[ G.member "n" ]);
  ignore
    (G.add_class b "C"
       ~bases:[ ("B", G.Non_virtual, G.Public) ]
       ~members:[]);
  let fs = lint (G.freeze b) in
  Alcotest.(check triple_t) "no findings" [] (triples fs);
  Alcotest.(check bool) "no severity" true (Lint.max_severity fs = None)

(* ---- rule selection and parsing ------------------------------------ *)

let test_rule_selection () =
  let config =
    { Lint.default_config with rules = [ Lint.Rule.Ambiguous_lookup ] }
  in
  let fs = lint ~config (Hiergen.Figures.fig3 ()) in
  Alcotest.(check triple_t)
    "figure 3's four ambiguous pairs, nothing else"
    [ ("ambiguous-lookup", "D", Some "foo");
      ("ambiguous-lookup", "F", Some "bar");
      ("ambiguous-lookup", "F", Some "foo");
      ("ambiguous-lookup", "H", Some "bar") ]
    (triples fs)

let test_parse_rules () =
  (match Lint.parse_rules "dead-member , ambiguous-lookup" with
  | Ok rules ->
    Alcotest.(check (list string))
      "parsed in given order"
      [ "dead-member"; "ambiguous-lookup" ]
      (List.map Lint.Rule.to_string rules)
  | Error e -> Alcotest.fail e);
  (match Lint.parse_rules "ambiguous-lookup,bogus" with
  | Ok _ -> Alcotest.fail "unknown rule accepted"
  | Error e -> Alcotest.(check bool) "names the bad id" true
                 (contains e "bogus"));
  (match Lint.parse_rules "" with
  | Ok _ -> Alcotest.fail "empty list accepted"
  | Error _ -> ());
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Lint.Rule.to_string r)
        true
        (Lint.Rule.of_string (Lint.Rule.to_string r) = Some r))
    Lint.Rule.all

(* ---- metrics -------------------------------------------------------- *)

let test_metrics () =
  let metrics = Lint.create_metrics () in
  let g = Hiergen.Figures.fig1 () in
  ignore (Lint.run ~metrics (Chg.Closure.compute g));
  let counters = Lint.metrics_counters metrics in
  let get name = List.assoc name counters in
  Alcotest.(check int) "one ambiguity" 1 (get "lint_ambiguous-lookup");
  Alcotest.(check int) "two replications" 2 (get "lint_replicated-base");
  Alcotest.(check bool) "pairs scanned" true (get "lint_pairs_checked" > 0);
  Alcotest.(check bool) "variant tables built" true
    (get "lint_variant_builds" > 0)

(* ---- locations and the JSON renderer ------------------------------- *)

let test_locations () =
  let locs ~cls ~member =
    match (cls, member) with
    | "E", Some "m" -> Some { Frontend.Loc.line = 7; col = 3 }
    | _ -> None
  in
  let fs =
    Lint.run ~locs (Chg.Closure.compute (Hiergen.Figures.fig1 ()))
  in
  let amb = List.hd (of_rule Lint.Rule.Ambiguous_lookup fs) in
  let j = Lint.finding_json ~file:"fig1.cpp" amb in
  let get name = Result.get_ok (J.member name j) in
  Alcotest.(check string) "rule" "ambiguous-lookup"
    (Result.get_ok (J.to_str (get "rule")));
  Alcotest.(check string) "severity" "error"
    (Result.get_ok (J.to_str (get "severity")));
  Alcotest.(check string) "file" "fig1.cpp"
    (Result.get_ok (J.to_str (get "file")));
  Alcotest.(check int) "line" 7 (Result.get_ok (J.to_int (get "line")));
  Alcotest.(check int) "col" 3 (Result.get_ok (J.to_int (get "col")));
  (* a finding without a location omits the position fields *)
  let dead = List.hd (of_rule Lint.Rule.Dead_member fs) in
  let dj = Lint.finding_json dead in
  Alcotest.(check bool) "no line at dummy loc" true
    (Result.is_error (J.member "line" dj));
  (* and the text renderer shows position + rule id + fix-it line *)
  let text = Format.asprintf "%a" (Lint.pp_text ~file:"fig1.cpp") fs in
  Alcotest.(check bool) "text position" true
    (contains text "fig1.cpp:7:3: error:");
  Alcotest.(check bool) "text rule tag" true
    (contains text "[ambiguous-lookup]");
  Alcotest.(check bool) "text fix-it line" true
    (contains text "fix-it: B : virtual A");
  Alcotest.(check bool) "text summary" true
    (contains text "7 findings: 1 error, 2 warnings, 4 notes")

(* ---- SARIF 2.1.0 required structure -------------------------------- *)

let test_sarif () =
  let fs = lint (Hiergen.Figures.fig1 ()) in
  let doc =
    Result.get_ok (J.of_string (Lint.Sarif.to_string ~file:"fig1.cpp" fs))
  in
  let get name j = Result.get_ok (J.member name j) in
  let str j = Result.get_ok (J.to_str j) in
  Alcotest.(check bool) "$schema names sarif-2.1.0" true
    (contains (str (get "$schema" doc)) "sarif-2.1.0");
  Alcotest.(check string) "version" "2.1.0" (str (get "version" doc));
  let runs = Result.get_ok (J.to_list (get "runs" doc)) in
  Alcotest.(check int) "one run" 1 (List.length runs);
  let run = List.hd runs in
  let driver = get "driver" (get "tool" run) in
  Alcotest.(check string) "driver name" "cxxlookup-lint"
    (str (get "name" driver));
  let rules = Result.get_ok (J.to_list (get "rules" driver)) in
  Alcotest.(check (list string))
    "full static rule table"
    (List.map Lint.Rule.to_string Lint.Rule.all)
    (List.map (fun r -> str (get "id" r)) rules);
  List.iter
    (fun r ->
      ignore (str (get "text" (get "shortDescription" r)));
      ignore (str (get "level" (get "defaultConfiguration" r))))
    rules;
  let results = Result.get_ok (J.to_list (get "results" run)) in
  Alcotest.(check int) "one result per finding" (List.length fs)
    (List.length results);
  List.iter2
    (fun f r ->
      Alcotest.(check string) "ruleId"
        (Lint.Rule.to_string f.Lint.f_rule)
        (str (get "ruleId" r));
      Alcotest.(check int) "ruleIndex"
        (Lint.Rule.index f.Lint.f_rule)
        (Result.get_ok (J.to_int (get "ruleIndex" r)));
      ignore (str (get "level" r));
      Alcotest.(check string) "message text" f.Lint.f_diag.D.message
        (str (get "text" (get "message" r)));
      let loc = List.hd (Result.get_ok (J.to_list (get "locations" r))) in
      Alcotest.(check string) "artifact uri" "fig1.cpp"
        (str
           (get "uri" (get "artifactLocation" (get "physicalLocation" loc)))))
    fs results

(* ---- property: the ambiguous-lookup rule IS the spec oracle -------- *)

let members = [ "m"; "n"; "p" ]

let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members ~seed)
      (tup5 (int_range 1 14) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let instance_arb =
  QCheck.make instance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

let prop_ambiguous_matches_spec =
  QCheck.Test.make ~count:500 ~name:"ambiguous-lookup rule = spec oracle"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let config =
        { Lint.default_config with rules = [ Lint.Rule.Ambiguous_lookup ] }
      in
      let flagged =
        List.map
          (fun f -> (f.Lint.f_class, Option.get f.Lint.f_member))
          (lint ~config g)
      in
      let expected =
        List.concat_map
          (fun c ->
            List.filter_map
              (fun m ->
                match Spec.lookup_static g c m with
                | Spec.Ambiguous _ -> Some (G.name g c, m)
                | Spec.Resolved _ | Spec.Undeclared -> None)
              members)
          (G.classes g)
      in
      List.sort compare flagged = List.sort compare expected)

let suite =
  [ Alcotest.test_case "figure 1: every diamond rule fires" `Quick test_fig1;
    Alcotest.test_case "figure 2: dominance-only resolution" `Quick
      test_fig2;
    Alcotest.test_case "figure 9: divergence from buggy g++" `Quick
      test_fig9;
    Alcotest.test_case "clean hierarchy: no findings" `Quick test_clean;
    Alcotest.test_case "rule selection" `Quick test_rule_selection;
    Alcotest.test_case "rule-list parsing" `Quick test_parse_rules;
    Alcotest.test_case "metrics counters" `Quick test_metrics;
    Alcotest.test_case "locations, JSON and text renderers" `Quick
      test_locations;
    Alcotest.test_case "SARIF 2.1.0 structure" `Quick test_sarif;
    QCheck_alcotest.to_alcotest prop_ambiguous_matches_spec ]
