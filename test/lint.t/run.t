Linter integration tests: the paper's Figure 1 diamond, the Figure 9
g++ counterexample, and a clean hierarchy, through every output format
and the severity-driven exit codes.

  $ cat > fig1.cpp <<'CPP'
  > struct A { int m; };
  > struct B : A {};
  > struct C : B {};
  > struct D : B { int m; };
  > struct E : C, D {};
  > CPP

  $ cat > fig9.cpp <<'CPP'
  > struct S  { int m; };
  > struct A : virtual S { int m; };
  > struct B : virtual S { int m; };
  > struct C : virtual A, virtual B { int m; };
  > struct D : C {};
  > struct E : virtual A, virtual B, D {};
  > CPP

  $ cat > clean.cpp <<'CPP'
  > struct A { int m; };
  > struct B : A { int n; };
  > struct C : B {};
  > CPP

Figure 1: every diamond rule fires, and the ambiguity makes the exit
code non-zero under the default --fail-on error.

  $ cxxlookup lint fig1.cpp
  fig1.cpp:4:20: note: declaration 'D::m' is never the result of member lookup in any of the 1 class derived from 'D' (always hidden or ambiguous below) [dead-member]
  fig1.cpp:5:8: error: request for member 'm' is ambiguous in 'E'; candidate definition paths: A-B-C-E; D-E [ambiguous-lookup]
  fig1.cpp:5:8: warning: a 'E' object contains 2 distinct 'A' subobjects (replicated non-virtual base); members of 'A' are ambiguous or must be reached by qualified paths [replicated-base]
  fig1.cpp:5:8: warning: a 'E' object contains 2 distinct 'B' subobjects (replicated non-virtual base); members of 'B' are ambiguous or must be reached by qualified paths [replicated-base]
  fig1.cpp:5:8: note: declaring 'A' as a virtual base (B : virtual A) resolves the ambiguity of 'm' in 'E' to 'D::m' and preserves every other lookup verdict [virtualize-fix-it]
      fix-it: B : virtual A
  fig1.cpp:5:8: note: declaring 'B' as a virtual base (C : virtual B; D : virtual B) resolves the ambiguity of 'm' in 'E' to 'D::m' and preserves every other lookup verdict [virtualize-fix-it]
      fix-it: C : virtual B; D : virtual B
  fig1.cpp:5:8: note: a topological-order lookup (the Eiffel-style baseline) silently resolves 'm' in 'E' to 'D::m' where ISO C++ lookup is ambiguous [compiler-divergence]
  7 findings: 1 error, 2 warnings, 4 notes
  [1]

Figure 9: no ambiguity (the headline lookup resolves to C::m by
dominance), so the default threshold passes — but the dominance-only
resolution, the dead virtual-base declarations, and the divergence from
buggy g++ 2.7 are all reported.

  $ cxxlookup lint fig9.cpp
  fig9.cpp:1:17: note: declaration 'S::m' is never the result of member lookup in any of the 5 classes derived from 'S' (always hidden or ambiguous below) [dead-member]
  fig9.cpp:2:28: note: declaration 'A::m' is never the result of member lookup in any of the 3 classes derived from 'A' (always hidden or ambiguous below) [dead-member]
  fig9.cpp:3:28: note: declaration 'B::m' is never the result of member lookup in any of the 3 classes derived from 'B' (always hidden or ambiguous below) [dead-member]
  fig9.cpp:6:8: warning: lookup of 'm' in 'E' resolves to 'C::m' only by dominance over definition(s) in virtual bases 'A', 'B' [fragile-dominance]
      fix-it: use the qualified name 'C::m', or redeclare 'm' in 'E', to make the choice explicit
  fig9.cpp:6:8: note: g++ 2.7 (buggy dominance pruning) rejects 'm' in 'E' as ambiguous; ISO C++ lookup resolves it to 'C::m' [compiler-divergence]
  5 findings: 0 errors, 1 warning, 4 notes

A clean single-inheritance chain produces nothing.

  $ cxxlookup lint clean.cpp
  no lint findings

Exit codes follow --fail-on: the fig9 warning trips a warning
threshold, and `never` always exits 0.

  $ cxxlookup lint fig9.cpp --fail-on warning > /dev/null
  [1]
  $ cxxlookup lint fig1.cpp --fail-on never > /dev/null

Rule selection runs only the named rules.

  $ cxxlookup lint fig1.cpp --rules ambiguous-lookup,replicated-base
  fig1.cpp:5:8: error: request for member 'm' is ambiguous in 'E'; candidate definition paths: A-B-C-E; D-E [ambiguous-lookup]
  fig1.cpp:5:8: warning: a 'E' object contains 2 distinct 'A' subobjects (replicated non-virtual base); members of 'A' are ambiguous or must be reached by qualified paths [replicated-base]
  fig1.cpp:5:8: warning: a 'E' object contains 2 distinct 'B' subobjects (replicated non-virtual base); members of 'B' are ambiguous or must be reached by qualified paths [replicated-base]
  3 findings: 1 error, 2 warnings, 0 notes
  [1]

Unknown rule names are a usage error that lists every valid id (the
classic six, the cross-semantics three, and the expansion tokens).

  $ cxxlookup lint fig1.cpp --rules nope
  error: unknown lint rule 'nope' (valid: ambiguous-lookup, replicated-base, fragile-dominance, dead-member, virtualize-fix-it, compiler-divergence, mro-unsolvable, semantics-divergence, linearization-sensitive, all, default)
  [2]

JSON-lines output: one object per finding, with positions and fix-its.

  $ cxxlookup lint fig1.cpp --format json --rules ambiguous-lookup,virtualize-fix-it --fail-on never
  {"rule":"ambiguous-lookup","severity":"error","class":"E","member":"m","file":"fig1.cpp","line":5,"col":8,"message":"request for member 'm' is ambiguous in 'E'; candidate definition paths: A-B-C-E; D-E"}
  {"rule":"virtualize-fix-it","severity":"note","class":"E","member":"m","file":"fig1.cpp","line":5,"col":8,"message":"declaring 'A' as a virtual base (B : virtual A) resolves the ambiguity of 'm' in 'E' to 'D::m' and preserves every other lookup verdict","fixit":"B : virtual A"}
  {"rule":"virtualize-fix-it","severity":"note","class":"E","member":"m","file":"fig1.cpp","line":5,"col":8,"message":"declaring 'B' as a virtual base (C : virtual B; D : virtual B) resolves the ambiguity of 'm' in 'E' to 'D::m' and preserves every other lookup verdict","fixit":"C : virtual B; D : virtual B"}

SARIF 2.1.0: the document head carries the schema, version, and the
full static rule table; one result per finding.

  $ cxxlookup lint fig1.cpp --format sarif --fail-on never | head -12
  {
    "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
    "version": "2.1.0",
    "runs": [
      {
        "tool": {
          "driver": {
            "name": "cxxlookup-lint",
            "informationUri": "https://doi.org/10.1145/258915.258916",
            "rules": [
              {
                "id": "ambiguous-lookup",

  $ cxxlookup lint fig1.cpp --format sarif --fail-on never | grep -c '"ruleId"'
  7

Cross-semantics rules are opt-in: `--rules all` adds them to the run.
On Figure 1 the C3 linearization resolves the C++-ambiguous lookup, so
semantics-divergence fires on top of the classic seven findings.

  $ cxxlookup lint fig1.cpp --rules all | tail -3
  fig1.cpp:5:8: note: a topological-order lookup (the Eiffel-style baseline) silently resolves 'm' in 'E' to 'D::m' where ISO C++ lookup is ambiguous [compiler-divergence]
  fig1.cpp:5:8: warning: lookup of 'm' in 'E' is ambiguous under C++ dominance but C3 linearization resolves it to 'D::m' [semantics-divergence]
  8 findings: 1 error, 3 warnings, 4 notes

Figure 9 is the mirror image: C++ dominance resolves E::m, but E has no
C3 linearization — its local precedence order (A, B before D) contradicts
D's own linearization.  The witness names the offending constraint
cycle, and the variant-sensitivity note shows Python 2.2 alone agreeing
with C++.

  $ cxxlookup lint fig9.cpp --rules mro-unsolvable,semantics-divergence,linearization-sensitive --fail-on never
  fig9.cpp:6:8: warning: class 'E' has no C3 linearization: its local precedence constraints form the cycle 'A' < 'D' < 'A' [mro-unsolvable]
  fig9.cpp:6:8: warning: C++ dominance resolves 'm' in 'E' to 'C::m' but 'E' has no C3 linearization [semantics-divergence]
  fig9.cpp:6:8: note: the MRO variants disagree on 'm' in 'E': c3 -> unsolvable, py22 -> C::m, dylan -> unsolvable [linearization-sensitive]
  3 findings: 0 errors, 2 warnings, 1 note

The SARIF result's property bag records which baseline or semantics
diverged: the g++ 2.7 scan on Figure 9, the Eiffel-style topological
baseline and the C3 linearization on Figure 1.

  $ cxxlookup lint fig9.cpp --format sarif --fail-on never | grep '"baseline"'
              "baseline": "gxx-buggy"
  $ cxxlookup lint fig1.cpp --rules all --format sarif --fail-on never | grep '"baseline"'
              "baseline": "topo"
              "baseline": "c3"
