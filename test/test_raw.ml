(* The raw speed floor, held to the spec oracle and fuzzed: the
   cxxlookup-rpc/1b binary framing must answer verdict-for-verdict like
   the JSON protocol's spec-backed oracle on arbitrary hierarchies, and
   malformed input on either fast path — truncated or bit-flipped
   frames, corrupt mmap sections — must come back as in-band errors
   ([bad_request] / store errors), never as an exception or a wrong
   verdict. *)

module G = Chg.Graph
module B = Chg.Binary
module J = Chg.Json
module Path = Subobject.Path
module Spec = Subobject.Spec
module Engine = Lookup_core.Engine
module Vio = Lookup_core.Verdict_io
module Packed = Lookup_core.Packed
module Session = Service.Session
module Server = Service.Server
module Frame = Service.Frame
module P = Service.Protocol

(* ---- scratch helpers ----------------------------------------------- *)

let temp_dir () =
  let f = Filename.temp_file "cxxraw" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let corrupt_byte path off mask =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

let response_ok j = J.member "ok" j = Ok (J.Bool true)

(* A server with [g] opened as session [s]; class ids in frames are the
   graph's own ids (the session interns classes in graph order). *)
let server_with g ~session =
  let srv = Server.create () in
  let resp =
    Server.handle_line srv
      (J.to_string
         (J.Obj
            [ ("id", J.Int 0); ("op", J.String "open");
              ("session", J.String session);
              ("chg", Chg.Serialize.to_json g) ]))
  in
  if not (response_ok resp) then
    Alcotest.failf "open failed: %s" (J.to_string resp);
  srv

let frame_request srv rq = Server.handle_frame srv (Frame.encode_request rq)

let decode_ok ~op resp =
  match Frame.decode_response ~op resp with
  | Ok (_, r) -> r
  | Error msg -> Alcotest.failf "bad response frame: %s" msg

let member_ids srv ~session =
  match
    decode_ok ~op:Frame.op_symbols
      (frame_request srv
         { Frame.fr_id = 0; fr_session = session; fr_op = Frame.Symbols })
  with
  | Frame.Ok_symbols { os_members; _ } ->
    let h = Hashtbl.create (Array.length os_members) in
    Array.iteri (fun i n -> Hashtbl.replace h n i) os_members;
    h
  | _ -> Alcotest.fail "symbols did not answer Ok_symbols"

(* The spec oracle's verdict as a {!Frame.verdict_code}. *)
let oracle_code g c m =
  match Spec.lookup_static g c m with
  | Spec.Resolved p -> Path.ldc p
  | Spec.Ambiguous _ -> -2
  | Spec.Undeclared -> -1

(* ---- generators (mirroring the store recovery property) ------------ *)

let qc_members = [ "m"; "n"; "p" ]

let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members:qc_members ~seed)
      (tup5 (int_range 2 12) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let instance_arb =
  QCheck.make instance_gen ~print:(fun i ->
      Printf.sprintf "%s\n%s" i.Hiergen.Families.description
        (Format.asprintf "%a" G.pp i.Hiergen.Families.graph))

(* ---- binary frames = spec oracle ------------------------------------ *)

let prop_frames_match_oracle =
  QCheck.Test.make ~count:50
    ~name:"1b lookup and batch_lookup = spec oracle on arbitrary DAGs"
    instance_arb (fun inst ->
      let g = inst.Hiergen.Families.graph in
      let session = "q" in
      let srv = server_with g ~session in
      let mids = member_ids srv ~session in
      let pairs =
        List.concat_map
          (fun m ->
            let mid =
              match Hashtbl.find_opt mids m with
              | Some i -> i
              | None -> Alcotest.failf "member %S not interned" m
            in
            List.init (G.num_classes g) (fun c -> (c, m, mid)))
          (G.member_names g)
      in
      let codes =
        List.map
          (fun (c, m, mid) ->
            match
              decode_ok ~op:Frame.op_lookup
                (frame_request srv
                   { Frame.fr_id = 1; fr_session = session;
                     fr_op = Frame.Lookup { lk_class = c; lk_member = mid } })
            with
            | Frame.Ok_lookup code ->
              if code <> oracle_code g c m then
                QCheck.Test.fail_reportf
                  "lookup(%s, %s): frame code %d, oracle %d" (G.name g c) m
                  code (oracle_code g c m);
              code
            | _ -> Alcotest.fail "lookup did not answer Ok_lookup")
          pairs
      in
      (match
         decode_ok ~op:Frame.op_batch_lookup
           (frame_request srv
              { Frame.fr_id = 2; fr_session = session;
                fr_op =
                  Frame.Batch_lookup
                    (Array.of_list
                       (List.map (fun (c, _, mid) -> (c, mid)) pairs)) })
       with
      | Frame.Ok_batch { ob_codes; ob_resolved; ob_ambiguous; ob_not_found }
        ->
        if Array.to_list ob_codes <> codes then
          QCheck.Test.fail_report "batch codes differ from single lookups";
        let count p = List.length (List.filter p codes) in
        if
          ob_resolved <> count (fun c -> c >= 0)
          || ob_ambiguous <> count (( = ) (-2))
          || ob_not_found <> count (( = ) (-1))
        then QCheck.Test.fail_report "batch counts disagree with codes"
      | _ -> Alcotest.fail "batch did not answer Ok_batch");
      true)

(* Mutations over frames: add_class/add_member answered with intern
   deltas, and the mutated hierarchy answers like a fresh oracle. *)
let test_frame_mutations () =
  let g = Hiergen.Figures.fig3 () in
  let session = "s" in
  let srv = server_with g ~session in
  let n0 = G.num_classes g in
  let resp =
    decode_ok ~op:Frame.op_add_class
      (frame_request srv
         { Frame.fr_id = 1; fr_session = session;
           fr_op =
             Frame.Add_class
               { ac_name = "Z";
                 ac_bases = [ (G.name g 0, G.Non_virtual, G.Public) ];
                 ac_members = [ G.member "zonly" ] } })
  in
  let zid =
    match resp with
    | Frame.Ok_add_class { oac_class; oac_classes; oac_new_symbols; _ } ->
      Alcotest.(check int) "class count after add_class" (n0 + 1) oac_classes;
      Alcotest.(check bool) "delta carries the new member" true
        (List.exists (fun (_, n) -> n = "zonly") oac_new_symbols);
      oac_class
    | _ -> Alcotest.fail "add_class did not answer Ok_add_class"
  in
  let mids = member_ids srv ~session in
  let zonly = Hashtbl.find mids "zonly" in
  (match
     decode_ok ~op:Frame.op_lookup
       (frame_request srv
          { Frame.fr_id = 2; fr_session = session;
            fr_op = Frame.Lookup { lk_class = zid; lk_member = zonly } })
   with
  | Frame.Ok_lookup code ->
    Alcotest.(check int) "Z::zonly resolves to Z" zid code
  | _ -> Alcotest.fail "lookup did not answer Ok_lookup");
  match
    decode_ok ~op:Frame.op_add_member
      (frame_request srv
         { Frame.fr_id = 3; fr_session = session;
           fr_op =
             Frame.Add_member
               { am_class = zid; am_member = G.member "znext" } })
  with
  | Frame.Ok_add_member { oam_member; oam_new_symbols; _ } ->
    Alcotest.(check (list (pair int string)))
      "delta is exactly the new symbol"
      [ (oam_member, "znext") ]
      oam_new_symbols
  | _ -> Alcotest.fail "add_member did not answer Ok_add_member"

(* ---- fuzz: mangled frames are errors, never exceptions -------------- *)

(* Every fuzz case mangles one of these valid frames. *)
let seed_frames session =
  [ Frame.encode_request
      { Frame.fr_id = 7; fr_session = session;
        fr_op = Frame.Lookup { lk_class = 1; lk_member = 0 } };
    Frame.encode_request
      { Frame.fr_id = 8; fr_session = session;
        fr_op = Frame.Batch_lookup [| (0, 0); (1, 1); (2, 0) |] };
    Frame.encode_request
      { Frame.fr_id = 9; fr_session = session;
        fr_op =
          Frame.Add_member { am_class = 0; am_member = G.member "fz" } };
    Frame.encode_request
      { Frame.fr_id = 10; fr_session = session; fr_op = Frame.Symbols } ]

type mangle = Truncate of int | Flip of int * int

let mangle_gen nframes =
  QCheck.Gen.(
    tup2 (int_range 0 (nframes - 1))
      (oneof
         [ map (fun k -> Truncate k) (int_range 0 1000);
           map (fun (p, m) -> Flip (p, m))
             (tup2 (int_range 0 1000) (int_range 1 255)) ]))

let mangle_arb nframes =
  QCheck.make (mangle_gen nframes) ~print:(fun (i, m) ->
      match m with
      | Truncate k -> Printf.sprintf "frame %d truncated at %d/1000" i k
      | Flip (p, m) -> Printf.sprintf "frame %d flip %d/1000 mask %#x" i p m)

(* The fuzzed server is shared across cases: a mangled frame that
   happens to decode as a valid mutation is allowed to mutate — the
   property is about crashes and response well-formedness, and the
   goodness probe below re-checks a known verdict after every case. *)
let prop_mangled_frames =
  let g = Hiergen.Figures.fig3 () in
  let session = "f" in
  let srv = server_with g ~session in
  let frames = seed_frames session in
  let good_frame =
    Frame.encode_request
      { Frame.fr_id = 99; fr_session = session;
        fr_op = Frame.Lookup { lk_class = 0; lk_member = 0 } }
  in
  let good_code =
    match decode_ok ~op:Frame.op_lookup (Server.handle_frame srv good_frame)
    with
    | Frame.Ok_lookup code -> code
    | _ -> Alcotest.fail "probe lookup failed"
  in
  QCheck.Test.make ~count:300
    ~name:"truncated/bit-flipped 1b frames: in-band errors, never a crash"
    (mangle_arb (List.length frames))
    (fun (which, m) ->
      let f = List.nth frames which in
      let len = String.length f in
      let mangled =
        match m with
        | Truncate k -> String.sub f 0 (k * len / 1000)
        | Flip (p, mask) ->
          let b = Bytes.of_string f in
          let p = p * (len - 1) / 1000 in
          Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor mask));
          Bytes.to_string b
      in
      let resp = Server.handle_frame srv mangled in
      (* the response is always a well-formed frame both decoders
         accept: header magic, and a typed decode for whichever op the
         mangled header claims *)
      if String.length resp < Frame.header_len then
        QCheck.Test.fail_reportf "short response (%d bytes)"
          (String.length resp);
      if Char.code resp.[0] <> Frame.response_magic then
        QCheck.Test.fail_report "response lacks the 0xB2 magic";
      let claimed_op =
        if String.length mangled > 1 then Char.code mangled.[1] else 0
      in
      (match Frame.decode_response ~op:claimed_op resp with
      | Ok _ -> ()
      | Error msg ->
        QCheck.Test.fail_reportf "response frame undecodable: %s" msg);
      (* and the server still serves the known-good verdict *)
      (match
         Frame.decode_response ~op:Frame.op_lookup
           (Server.handle_frame srv good_frame)
       with
      | Ok (_, Frame.Ok_lookup code) when code = good_code -> ()
      | _ -> QCheck.Test.fail_report "probe verdict changed after fuzz");
      true)

(* Truncating a frame below the declared payload length is the net
   layer's concern (it only delivers complete frames); at the handler
   boundary a length mismatch must still answer parse_error. *)
let test_frame_length_mismatch () =
  let g = Hiergen.Figures.fig3 () in
  let session = "s" in
  let srv = server_with g ~session in
  let f =
    Frame.encode_request
      { Frame.fr_id = 1; fr_session = session;
        fr_op = Frame.Lookup { lk_class = 0; lk_member = 0 } }
  in
  let truncated = String.sub f 0 (String.length f - 2) in
  match Frame.decode_response ~op:Frame.op_lookup
          (Server.handle_frame srv truncated)
  with
  | Ok (_, Frame.Err (P.Parse_error, _)) -> ()
  | Ok (_, _) -> Alcotest.fail "expected a parse_error frame"
  | Error msg -> Alcotest.failf "undecodable response: %s" msg

(* Client-side decoder fuzz: mangled *response* frames must come back
   as [Error], never raise — the client trusts the server no more than
   the server trusts the client. *)
let prop_mangled_responses =
  let resps =
    [ (Frame.op_lookup, Frame.encode_response ~id:3 (Frame.Ok_lookup 5));
      ( Frame.op_batch_lookup,
        Frame.encode_response ~id:4
          (Frame.Ok_batch
             { ob_codes = [| 1; -2; -1 |]; ob_resolved = 1; ob_ambiguous = 1;
               ob_not_found = 1 }) );
      ( Frame.op_symbols,
        Frame.encode_response ~id:5
          (Frame.Ok_symbols
             { os_epoch = 0; os_classes = [| "A"; "B" |];
               os_members = [| "m" |] }) );
      ( Frame.op_lookup,
        Frame.encode_response ~id:6 (Frame.Err (P.Bad_request, "nope")) ) ]
  in
  QCheck.Test.make ~count:300
    ~name:"mangled 1b responses: client decoder returns Error, never raises"
    (mangle_arb (List.length resps))
    (fun (which, m) ->
      let op, f = List.nth resps which in
      let len = String.length f in
      let mangled =
        match m with
        | Truncate k -> String.sub f 0 (k * len / 1000)
        | Flip (p, mask) ->
          let b = Bytes.of_string f in
          let p = p * (len - 1) / 1000 in
          Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor mask));
          Bytes.to_string b
      in
      (* any result is fine; any exception is the bug *)
      (match Frame.decode_response ~op mangled with
      | Ok _ | Error _ -> ());
      true)

(* ---- mmap restore = decode restore = spec oracle -------------------- *)

let boxed_columns g =
  let cl = Chg.Closure.compute g in
  let e = Engine.build cl in
  List.map
    (fun m ->
      (m, Array.init (G.num_classes g) (fun c -> Engine.lookup e c m)))
    (G.member_names g)

let compiled_columns g =
  List.map (fun (m, col) -> (m, Packed.pack_column col)) (boxed_columns g)

let write_store_snapshot dir g =
  let st = Store.open_dir dir in
  ignore
    (Store.write_snapshot st
       { Store.Snapshot.s_session = "q";
         s_epoch = 0;
         s_protocol = P.version;
         s_graph = g;
         s_columns = compiled_columns g });
  Store.close st

let recover_with dir mode =
  let st =
    Store.open_dir ~config:{ Store.default_config with mmap_restore = mode }
      dir
  in
  let r = Store.recover st "q" in
  let engaged =
    match List.assoc_opt "store_mmap_restores" (Store.counters st) with
    | Some n -> n > 0
    | None -> false
  in
  Store.close st;
  (r, engaged)

let prop_mmap_matches_oracle =
  QCheck.Test.make ~count:40
    ~name:"mmap restore (verify/fast) = decode restore = spec oracle"
    instance_arb (fun inst ->
      let g = inst.Hiergen.Families.graph in
      with_temp_dir (fun dir ->
          write_store_snapshot dir g;
          let restored mode =
            match recover_with dir mode with
            | (Ok (Some rv), _) -> rv.Store.rv_snapshot
            | (Ok None, _) -> Alcotest.fail "store lost its snapshot"
            | (Error e, _) -> Alcotest.failf "recover failed: %s" e
          in
          let check_columns what (s : Store.Snapshot.t) =
            List.iter
              (fun m ->
                let col =
                  match List.assoc_opt m s.Store.Snapshot.s_columns with
                  | Some c -> c
                  | None -> Alcotest.failf "%s: column %S missing" what m
                in
                for c = 0 to G.num_classes g - 1 do
                  let code = Packed.column_resolve_code col c in
                  if code <> oracle_code g c m then
                    QCheck.Test.fail_reportf
                      "%s: column %S class %s: code %d, oracle %d" what m
                      (G.name g c) code (oracle_code g c m)
                done)
              (G.member_names g)
          in
          check_columns "decode" (restored `Off);
          check_columns "mmap-verify" (restored `Verify);
          check_columns "mmap-fast" (restored `Fast);
          true))

(* Legacy snapshots (pre-image boxed tag-3 columns) predate the
   mappable section, so the zero-copy opener must decline and the store
   must restore them through the decode path — silently, with correct
   verdicts and no mmap engagement. *)
let test_legacy_snapshot_falls_back_to_decode () =
  let g = Hiergen.Figures.fig3 () in
  with_temp_dir (fun dir ->
      let section f =
        let w = B.Writer.create () in
        f w;
        B.Writer.contents w
      in
      let crc_int s = Int32.to_int (B.crc32_string s) land 0xffffffff in
      let w = B.Writer.create () in
      B.Writer.raw w "CXLSNAP0";
      B.Writer.u32 w 1;
      let sections =
        [ ( 1,
            section (fun w ->
                B.Writer.string w "q";
                B.Writer.i64 w 0;
                B.Writer.string w P.version) );
          (2, section (fun w -> B.write_graph w g));
          ( 3,
            section (fun w ->
                let cols = boxed_columns g in
                B.Writer.u32 w (List.length cols);
                List.iter
                  (fun (m, col) ->
                    B.Writer.string w m;
                    Vio.write_column w col)
                  cols) ) ]
      in
      B.Writer.u32 w (List.length sections);
      List.iter
        (fun (tag, payload) ->
          B.Writer.u8 w tag;
          B.Writer.u32 w (String.length payload);
          B.Writer.u32 w (crc_int payload);
          B.Writer.raw w payload)
        sections;
      Unix.mkdir (Filename.concat dir "q") 0o700;
      Out_channel.with_open_bin
        (Filename.concat dir (Filename.concat "q" "snap-0000000000.snap"))
        (fun oc -> Out_channel.output_string oc (B.Writer.contents w));
      match recover_with dir `Verify with
      | (Ok (Some rv), engaged) ->
        Alcotest.(check bool) "mmap did not engage on a legacy file" false
          engaged;
        List.iter
          (fun m ->
            match
              List.assoc_opt m rv.Store.rv_snapshot.Store.Snapshot.s_columns
            with
            | None -> Alcotest.failf "legacy column %S missing" m
            | Some col ->
              for c = 0 to G.num_classes g - 1 do
                Alcotest.(check int)
                  (Printf.sprintf "legacy verdict (%s, %s)" (G.name g c) m)
                  (oracle_code g c m)
                  (Packed.column_resolve_code col c)
              done)
          (G.member_names g)
      | (Ok None, _) -> Alcotest.fail "legacy snapshot invisible to recovery"
      | (Error e, _) -> Alcotest.failf "legacy recovery failed: %s" e)

(* A flipped bit anywhere in the snapshot must never crash recovery or
   change a verdict under the default (verifying) mode: either an older
   snapshot/decode path serves the right answers, or recovery reports
   the store unusable.  With a single corrupt snapshot on disk, that
   means [Error] — which the service layer answers as a store error. *)
let prop_corrupt_snapshot =
  let case_gen = QCheck.Gen.(tup2 instance_gen (int_range 0 1000)) in
  let case_arb =
    QCheck.make case_gen ~print:(fun (i, p) ->
        Printf.sprintf "flip at %d/1000 of\n%s" p
          i.Hiergen.Families.description)
  in
  QCheck.Test.make ~count:60
    ~name:"corrupt snapshot under verify: error or right verdicts, no crash"
    case_arb (fun (inst, pos) ->
      let g = inst.Hiergen.Families.graph in
      with_temp_dir (fun dir ->
          write_store_snapshot dir g;
          let snap_path =
            match
              let st = Store.open_dir dir in
              let p = Store.newest_snapshot st "q" in
              Store.close st;
              p
            with
            | Some (_, p) -> p
            | None -> Alcotest.fail "no snapshot written"
          in
          let size = (Unix.stat snap_path).Unix.st_size in
          corrupt_byte snap_path (pos * (size - 1) / 1000) 0x10;
          (match recover_with dir `Verify with
          | (Ok (Some rv), _) ->
            (* recovery may succeed on a damaged file — the flip landed
               in padding, or turned a section tag into an unknown one
               the reader skips for forward compatibility, dropping
               that section (a missing column is safe degradation: the
               session recompiles it).  What must never happen is a
               column that is present answering wrong. *)
            List.iter
              (fun m ->
                match
                  List.assoc_opt m rv.Store.rv_snapshot.Store.Snapshot.s_columns
                with
                | None -> ()
                | Some col ->
                  for c = 0 to G.num_classes g - 1 do
                    if Packed.column_resolve_code col c <> oracle_code g c m
                    then
                      QCheck.Test.fail_reportf
                        "corrupt snapshot served a wrong verdict for (%s, %s)"
                        (G.name g c) m
                  done)
              (G.member_names g)
          | (Ok None, _) | (Error _, _) -> ());
          true))

(* Fast mode skips the CRC pass by contract, so a corrupt image may
   serve — but the structural checks and per-access bounds checks must
   keep every probe inside the mapping: probing all columns never
   escapes with anything but [Corrupt]. *)
let prop_corrupt_fast_no_crash =
  let case_gen = QCheck.Gen.(tup2 instance_gen (int_range 0 1000)) in
  let case_arb =
    QCheck.make case_gen ~print:(fun (i, p) ->
        Printf.sprintf "flip at %d/1000 of\n%s" p
          i.Hiergen.Families.description)
  in
  QCheck.Test.make ~count:60
    ~name:"corrupt snapshot under fast: probes stay bounds-checked"
    case_arb (fun (inst, pos) ->
      let g = inst.Hiergen.Families.graph in
      with_temp_dir (fun dir ->
          write_store_snapshot dir g;
          let snap_path =
            match
              let st = Store.open_dir dir in
              let p = Store.newest_snapshot st "q" in
              Store.close st;
              p
            with
            | Some (_, p) -> p
            | None -> Alcotest.fail "no snapshot written"
          in
          let size = (Unix.stat snap_path).Unix.st_size in
          corrupt_byte snap_path (pos * (size - 1) / 1000) 0x10;
          (match recover_with dir `Fast with
          | (Ok (Some rv), _) ->
            List.iter
              (fun (_, col) ->
                for c = 0 to Packed.column_classes col - 1 do
                  match Packed.column_resolve_code col c with
                  | _ -> ()
                  | exception B.Corrupt _ -> ()
                done)
              rv.Store.rv_snapshot.Store.Snapshot.s_columns
          | (Ok None, _) | (Error _, _) -> ());
          true))

(* ---- suite ---------------------------------------------------------- *)

let suite =
  [ Alcotest.test_case "frame mutations carry intern deltas" `Quick
      test_frame_mutations;
    Alcotest.test_case "under-length frame answers parse_error" `Quick
      test_frame_length_mismatch;
    Alcotest.test_case "legacy snapshot falls back to decode" `Quick
      test_legacy_snapshot_falls_back_to_decode ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_frames_match_oracle;
        prop_mangled_frames;
        prop_mangled_responses;
        prop_mmap_matches_oracle;
        prop_corrupt_snapshot;
        prop_corrupt_fast_no_crash ]
