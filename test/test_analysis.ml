(* Tests for the hierarchy analysis pass. *)

module G = Chg.Graph

let analyze g = Analysis.run (Chg.Closure.compute g)

let test_fig1_replication () =
  let g = Hiergen.Figures.fig1 () in
  let t = analyze g in
  let e = Analysis.report t (G.find g "E") in
  Alcotest.(check int) "E depth" 3 e.cr_depth;
  Alcotest.(check int) "E direct bases" 2 e.cr_direct_bases;
  Alcotest.(check int) "E all bases" 4 e.cr_all_bases;
  Alcotest.(check int) "E virtual bases" 0 e.cr_virtual_bases;
  Alcotest.(check int) "E subobjects" 7 e.cr_subobjects;
  (* A and B are both replicated in E *)
  Alcotest.(check (list (pair string int)))
    "replicated bases"
    [ ("A", 2); ("B", 2) ]
    (List.map (fun (x, k) -> (G.name g x, k)) e.cr_replicated);
  Alcotest.(check (list string)) "ambiguous member" [ "m" ] e.cr_ambiguous;
  Alcotest.(check int) "summary pairs" 1 t.ambiguous_pairs;
  Alcotest.(check int) "classes with replication" 1
    t.classes_with_replication

let test_fig2_no_replication () =
  let g = Hiergen.Figures.fig2 () in
  let t = analyze g in
  let e = Analysis.report t (G.find g "E") in
  Alcotest.(check (list (pair string int))) "no replication" []
    (List.map (fun (x, k) -> (G.name g x, k)) e.cr_replicated);
  (* only B: a virtual base needs a path STARTING with a virtual edge
     (paper sec. 2); A's paths start with the non-virtual A->B *)
  Alcotest.(check int) "one virtual base (B)" 1 e.cr_virtual_bases;
  Alcotest.(check (list string)) "no ambiguity" [] e.cr_ambiguous;
  Alcotest.(check int) "summary" 0 t.ambiguous_pairs

let test_fig3_summary () =
  let g = Hiergen.Figures.fig3 () in
  let t = analyze g in
  (* ambiguous pairs: (D,foo), (F,foo), (F,bar), (H,bar) *)
  Alcotest.(check int) "ambiguous pairs" 4 t.ambiguous_pairs;
  Alcotest.(check int) "max depth (A..H)" 4 t.max_depth;
  let h = Analysis.report t (G.find g "H") in
  Alcotest.(check (list (pair string int)))
    "A replicated below the virtual D" [ ("A", 2) ]
    (List.map (fun (x, k) -> (G.name g x, k)) h.cr_replicated);
  Alcotest.(check (list string)) "H ambiguous members" [ "bar" ]
    h.cr_ambiguous

let test_roots () =
  let g = Hiergen.Figures.fig3 () in
  let t = analyze g in
  let a = Analysis.report t (G.find g "A") in
  Alcotest.(check int) "root depth" 0 a.cr_depth;
  Alcotest.(check int) "root subobjects" 1 a.cr_subobjects;
  Alcotest.(check (list string)) "root no ambiguity" [] a.cr_ambiguous

let test_copies_of () =
  let g = Hiergen.Figures.fig1 () in
  let cl = Chg.Closure.compute g in
  let id = G.find g in
  Alcotest.(check int) "A in E" 2
    (Subobject.Count.copies_of cl ~base:(id "A") ~within:(id "E"));
  Alcotest.(check int) "A in C" 1
    (Subobject.Count.copies_of cl ~base:(id "A") ~within:(id "C"));
  Alcotest.(check int) "E in A (unrelated)" 0
    (Subobject.Count.copies_of cl ~base:(id "E") ~within:(id "A"));
  let g2 = Hiergen.Figures.fig2 () in
  let cl2 = Chg.Closure.compute g2 in
  Alcotest.(check int) "fig2: one shared A in E" 1
    (Subobject.Count.copies_of cl2 ~base:(G.find g2 "A")
       ~within:(G.find g2 "E"))

let test_copies_sum_to_count () =
  (* Σ_base copies_of(base, C) + 1 = subobject count of C *)
  List.iter
    (fun mk ->
      let g = mk () in
      let cl = Chg.Closure.compute g in
      G.iter_classes g (fun c ->
          let total =
            Chg.Bitset.fold
              (fun x acc ->
                acc + Subobject.Count.copies_of cl ~base:x ~within:c)
              (Chg.Closure.bases_of cl c)
              1
          in
          Alcotest.(check int)
            (Printf.sprintf "at %s" (G.name g c))
            (Subobject.Count.subobjects cl c)
            total))
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_overflow_rendering () =
  (* 100 levels of non-virtual diamonds saturate the subobject count at
     max_int; pp_class must render that as "overflow", not the raw
     saturated integer *)
  let { Hiergen.Families.graph; probe; _ } =
    Hiergen.Families.diamond_stack ~levels:100 ~kind:G.Non_virtual
  in
  let t = analyze graph in
  let r = Analysis.report t probe in
  Alcotest.(check int) "count is saturated" max_int r.cr_subobjects;
  let rendered = Format.asprintf "%a" (Analysis.pp_class t) r in
  Alcotest.(check bool) "renders the marker" true
    (contains rendered "overflow subobjects");
  Alcotest.(check bool) "no raw max_int" false
    (contains rendered (string_of_int max_int));
  (* a small hierarchy still prints real numbers *)
  let g1 = Hiergen.Figures.fig1 () in
  let t1 = analyze g1 in
  let r1 = Analysis.report t1 (G.find g1 "E") in
  let small = Format.asprintf "%a" (Analysis.pp_class t1) r1 in
  Alcotest.(check bool) "numeric count intact" true
    (contains small "7 subobjects")

let suite =
  [ Alcotest.test_case "fig1: replication & ambiguity" `Quick
      test_fig1_replication;
    Alcotest.test_case "fig2: virtual sharing" `Quick
      test_fig2_no_replication;
    Alcotest.test_case "fig3: summary" `Quick test_fig3_summary;
    Alcotest.test_case "root classes" `Quick test_roots;
    Alcotest.test_case "per-base copy counts" `Quick test_copies_of;
    Alcotest.test_case "copies sum to the subobject count" `Quick
      test_copies_sum_to_count;
    Alcotest.test_case "saturated counts render as overflow" `Quick
      test_overflow_rendering ]
