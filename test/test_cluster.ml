(* Tests for the cluster layer: WAL tailing under concurrent append
   (strictly-consecutive prefix, torn frames completed rather than
   skipped, shrink = Reset), client retry/backoff, the replication
   wire codecs, leader/follower catch-up end to end in-process
   (including a follower restart over its own store and leader-side
   compaction resyncs), the follower's not_leader gate, and a QCheck
   property that routed batch_lookups — fanned out over three real
   networked backends and merged — match the spec oracle exactly. *)

module G = Chg.Graph
module J = Chg.Json
module P = Service.Protocol
module W = Hiergen.Workload
module Path = Subobject.Path
module Spec = Subobject.Spec
module Wal = Store.Wal
module Tail = Store.Wal.Tail_reader

(* ---- scratch directories ------------------------------------------- *)

let temp_dir () =
  let f = Filename.temp_file "cxxcluster" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let wait_until ?(timeout = 10.) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    || Unix.gettimeofday () -. t0 <= timeout
       && begin
            Thread.delay 0.02;
            go ()
          end
  in
  go ()

let mutation name =
  Store.Mutation.Add_member
    { am_class = "A";
      am_member =
        { G.m_name = name; m_kind = G.Data; m_static = false;
          m_virtual = false; m_access = G.Public } }

(* ---- WAL tail reader ------------------------------------------------ *)

let test_tail_concurrent_append () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  let w = Wal.open_append ~fsync:Wal.Never path in
  let n = 300 in
  let writer =
    Thread.create
      (fun () ->
        for e = 1 to n do
          ignore (Wal.append w ~epoch:e (mutation (Printf.sprintf "m%d" e)));
          if e mod 7 = 0 then Thread.yield ()
        done)
      ()
  in
  let r = Tail.create path in
  let seen = ref [] in
  let deadline = Unix.gettimeofday () +. 10. in
  while List.length !seen < n && Unix.gettimeofday () < deadline do
    match Tail.poll r with
    | Tail.Frames records ->
      List.iter (fun rc -> seen := rc.Wal.rc_epoch :: !seen) records
    | Tail.Nothing -> Thread.yield ()
    | Tail.Reset -> Alcotest.fail "tail reported Reset on an append-only file"
  done;
  Thread.join writer;
  Wal.close w;
  (* every record arrives exactly once, in append order: the reader
     never surfaced a torn frame or skipped one *)
  Alcotest.(check (list int)) "strictly consecutive epochs"
    (List.init n (fun i -> i + 1))
    (List.rev !seen)

let test_tail_completes_torn_frame () =
  with_temp_dir @@ fun dir ->
  (* build a 3-record WAL, then replay it into a second file with the
     third frame initially torn in half *)
  let full = Filename.concat dir "full.log" in
  let w = Wal.open_append ~fsync:Wal.Never full in
  ignore (Wal.append w ~epoch:1 (mutation "m1"));
  ignore (Wal.append w ~epoch:2 (mutation "m2"));
  let two = Wal.size w in
  ignore (Wal.append w ~epoch:3 (mutation "m3"));
  Wal.close w;
  let bytes = In_channel.with_open_bin full In_channel.input_all in
  let torn_at = two + ((String.length bytes - two) / 2) in
  let path = Filename.concat dir "wal.log" in
  let oc = Out_channel.open_bin path in
  Out_channel.output_string oc (String.sub bytes 0 torn_at);
  Out_channel.flush oc;
  let r = Tail.create path in
  let epochs = function
    | Tail.Frames rs -> List.map (fun rc -> rc.Wal.rc_epoch) rs
    | Tail.Nothing -> []
    | Tail.Reset -> Alcotest.fail "unexpected Reset"
  in
  Alcotest.(check (list int)) "complete prefix only" [ 1; 2 ]
    (epochs (Tail.poll r));
  Alcotest.(check (list int)) "torn suffix yields nothing yet" []
    (epochs (Tail.poll r));
  Alcotest.(check int) "offset stops at the valid prefix" two (Tail.offset r);
  (* the other half of the frame lands: the same offset re-validates
     and the record comes through — the bug the reader exists to avoid
     is judging this frame torn once and skipping it forever *)
  Out_channel.output_string oc
    (String.sub bytes torn_at (String.length bytes - torn_at));
  Out_channel.flush oc;
  Out_channel.close oc;
  Alcotest.(check (list int)) "completed frame arrives" [ 3 ]
    (epochs (Tail.poll r))

let test_tail_reset_on_shrink () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  let w = Wal.open_append ~fsync:Wal.Never path in
  ignore (Wal.append w ~epoch:1 (mutation "m1"));
  ignore (Wal.append w ~epoch:2 (mutation "m2"));
  let r = Tail.create path in
  (match Tail.poll r with
  | Tail.Frames rs ->
    Alcotest.(check int) "two records" 2 (List.length rs)
  | _ -> Alcotest.fail "expected frames");
  (* compaction empties the log: the reader must not pretend the old
     offset still means anything *)
  Wal.reset w;
  (match Tail.poll r with
  | Tail.Reset -> ()
  | _ -> Alcotest.fail "expected Reset after the WAL shrank");
  ignore (Wal.append w ~epoch:3 (mutation "m3"));
  (match Tail.poll r with
  | Tail.Frames [ rc ] ->
    Alcotest.(check int) "post-reset record" 3 rc.Wal.rc_epoch
  | _ -> Alcotest.fail "expected the post-reset record");
  Wal.close w

(* ---- client retry / backoff ----------------------------------------- *)

let test_backoff_bounds () =
  for attempt = 0 to 5 do
    for _ = 1 to 20 do
      let d = Net.Client.backoff_delay ~attempt ~backoff_ms:40 in
      let base = 0.040 *. (2. ** float_of_int attempt) in
      if d < (base *. 0.75) -. 1e-9 || d > (base *. 1.25) +. 1e-9 then
        Alcotest.failf "attempt %d: delay %.4f outside [%.4f, %.4f]" attempt d
          (base *. 0.75) (base *. 1.25)
    done
  done

let test_connect_retries_until_listener_appears () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "late.sock" in
  let addr = Net.Server.Unix_path path in
  (* the listener only appears 150 ms in: without retries the connect
     fails on ENOENT, with them it lands *)
  (try
     ignore (Net.Client.connect addr);
     Alcotest.fail "connect succeeded with no listener"
   with Unix.Unix_error _ -> ());
  let listener =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        let fd, _ = Net.Server.listen_on addr in
        let conn, _ = Unix.accept fd in
        Unix.close conn;
        Unix.close fd)
      ()
  in
  let cl = Net.Client.connect ~retries:8 ~backoff_ms:30 addr in
  Net.Client.close cl;
  Thread.join listener

(* ---- replication wire ----------------------------------------------- *)

let prop_b64_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire base64 roundtrip"
    QCheck.(string_gen_of_size Gen.(int_range 0 64) Gen.char)
    (fun s -> Cluster.Wire.b64_decode (Cluster.Wire.b64_encode s) = Ok s)

let test_hello_roundtrip () =
  let have = [ ("alpha", 7); ("beta", 0) ] in
  (match Cluster.Wire.parse_hello (Cluster.Wire.hello_line ~have) with
  | Ok h -> Alcotest.(check (list (pair string int))) "have survives" have h
  | Error e -> Alcotest.failf "hello failed to parse: %s" e);
  (match Cluster.Wire.parse_hello "{\"repl\":\"hello\",\"protocol\":\"other/9\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "protocol mismatch accepted")

let test_wal_line_roundtrip () =
  let record = { Wal.rc_epoch = 42; rc_mutation = mutation "wired" } in
  match
    Cluster.Wire.parse_server_msg (Cluster.Wire.wal_line ~session:"s" record)
  with
  | Ok (Cluster.Wire.Wal { session; record = r }) ->
    Alcotest.(check string) "session" "s" session;
    Alcotest.(check int) "epoch" 42 r.Wal.rc_epoch;
    Alcotest.(check string) "mutation"
      (Store.Mutation.describe record.Wal.rc_mutation)
      (Store.Mutation.describe r.Wal.rc_mutation)
  | Ok _ -> Alcotest.fail "decoded as the wrong message"
  | Error e -> Alcotest.failf "wal line failed to parse: %s" e

(* ---- follower role --------------------------------------------------- *)

let graph () = Hiergen.Figures.fig3 ()

let open_request ?(session = "s") g =
  { P.rq_id = J.Int 0;
    rq_session = Some session;
    rq_op =
      P.Open { o_session = Some session; o_hierarchy = P.Chg_json (Chg.Serialize.to_json g) }
  }

let mutate_request ~session name =
  { P.rq_id = J.Int 0;
    rq_session = Some session;
    rq_op =
      P.Mutate
        (P.Add_member
           { mm_class = "A";
             mm_member =
               { G.m_name = name; m_kind = G.Data; m_static = false;
                 m_virtual = false; m_access = G.Public } }) }

let lookup_request ~session ~cls ~member =
  { P.rq_id = J.Int 0;
    rq_session = Some session;
    rq_op =
      P.Lookup
        { lk_query = { P.q_class = cls; q_member = member };
          lk_semantics = Mro.Cpp } }

let resp_ok j = J.member "ok" j = Ok (J.Bool true)

let resp_error_code j =
  match J.member "error" j with
  | Ok e -> (match J.member "code" e with Ok (J.String s) -> s | _ -> "?")
  | Error _ -> "?"

let test_follower_rejects_mutations () =
  let srv = Service.Server.create ~role:Service.Server.Follower () in
  (match Service.Server.role srv with
  | Service.Server.Follower -> ()
  | Service.Server.Leader -> Alcotest.fail "role not recorded");
  let resp = Service.Server.handle_request srv (open_request (graph ())) in
  Alcotest.(check string) "open refused" "not_leader" (resp_error_code resp);
  (* a replicated install still lands, and reads over it work *)
  let g = graph () in
  let snap =
    { Store.Snapshot.s_session = "s"; s_epoch = 0;
      s_protocol = P.version; s_graph = g; s_columns = [] }
  in
  (match Service.Server.install_snapshot srv snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install failed: %s" e);
  let resp =
    Service.Server.handle_request srv
      (lookup_request ~session:"s" ~cls:"C" ~member:"m")
  in
  Alcotest.(check bool) "reads still served" true (resp_ok resp);
  let resp =
    Service.Server.handle_request srv (mutate_request ~session:"s" "nope")
  in
  Alcotest.(check string) "mutate refused" "not_leader" (resp_error_code resp)

let test_apply_replicated_gap_rejected () =
  let srv = Service.Server.create ~role:Service.Server.Follower () in
  let g = graph () in
  let snap =
    { Store.Snapshot.s_session = "s"; s_epoch = 0;
      s_protocol = P.version; s_graph = g; s_columns = [] }
  in
  (match Service.Server.install_snapshot srv snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install failed: %s" e);
  (match Service.Server.apply_replicated srv ~session:"s" ~epoch:1 (mutation "one") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "consecutive apply failed: %s" e);
  (match Service.Server.apply_replicated srv ~session:"s" ~epoch:3 (mutation "three") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "epoch gap accepted");
  match Service.Server.apply_replicated srv ~session:"missing" ~epoch:1 (mutation "x") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "apply to an unknown session accepted"

(* ---- leader/follower catch-up, end to end in-process ----------------- *)

let session_epoch srv name =
  match List.assoc_opt name (Service.Server.open_sessions srv) with
  | Some e -> e
  | None -> -1

let check_follower_matches_leader ~leader ~follower ~session g =
  List.iter
    (fun (q : W.query) ->
      let cls = G.name g q.W.q_class in
      let rq = lookup_request ~session ~cls ~member:q.W.q_member in
      let strip j =
        match j with
        | J.Obj fields -> J.Obj (List.filter (fun (k, _) -> k <> "via") fields)
        | other -> other
      in
      let l = strip (Service.Server.handle_request leader rq) in
      let f = strip (Service.Server.handle_request follower rq) in
      if J.to_string l <> J.to_string f then
        Alcotest.failf "lookup(%s, %s) diverges:\n leader   %s\n follower %s"
          cls q.W.q_member (J.to_string l) (J.to_string f))
    (W.exhaustive g)

let test_replication_catch_up_and_restart () =
  with_temp_dir @@ fun ldir ->
  with_temp_dir @@ fun fdir ->
  (* a tiny compaction threshold so the leader keeps snapshotting and
     resetting its WAL mid-stream: every resync path gets exercised *)
  let store_config =
    { Store.default_config with Store.compact_bytes = 256; fsync = Wal.Never }
  in
  let lstore = Store.open_dir ~config:store_config ldir in
  let leader = Service.Server.create ~store:lstore () in
  let g = graph () in
  Alcotest.(check bool) "leader open" true
    (resp_ok (Service.Server.handle_request leader (open_request g)));
  let repl = Cluster.Repl.create ~poll_ms:5 leader (Net.Server.Tcp ("127.0.0.1", 0)) in
  let repl_th = Thread.create Cluster.Repl.run repl in
  let leader_addr = Cluster.Repl.bound_addr repl in
  let follower_of store =
    Service.Server.create ~role:Service.Server.Follower ~store ()
  in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Repl.stop repl;
      Thread.join repl_th;
      Store.close lstore)
    (fun () ->
      let fstore = Store.open_dir ~config:store_config fdir in
      let follower = follower_of fstore in
      let rep = Cluster.Replica.create ~backoff_ms:20 follower leader_addr in
      let rep_th = Thread.create Cluster.Replica.run rep in
      for i = 1 to 10 do
        Alcotest.(check bool) "leader mutate" true
          (resp_ok
             (Service.Server.handle_request leader
                (mutate_request ~session:"s" (Printf.sprintf "r%d" i))))
      done;
      let caught_up srv () =
        session_epoch srv "s" = session_epoch leader "s"
      in
      Alcotest.(check bool) "follower catches up" true
        (wait_until (caught_up follower));
      check_follower_matches_leader ~leader ~follower ~session:"s" g;
      (* stop the follower entirely, keep mutating, then restart a
         fresh follower over the same store: it recovers locally,
         offers its epochs, and only the delta streams *)
      Cluster.Replica.stop rep;
      Thread.join rep_th;
      Store.close fstore;
      for i = 11 to 25 do
        Alcotest.(check bool) "leader mutate while follower down" true
          (resp_ok
             (Service.Server.handle_request leader
                (mutate_request ~session:"s" (Printf.sprintf "r%d" i))))
      done;
      let fstore = Store.open_dir ~config:store_config fdir in
      let follower = follower_of fstore in
      let recovered = Service.Server.recover_sessions follower in
      Alcotest.(check bool) "restart recovered locally" true
        (List.exists
           (function
             | Service.Server.Recovered { r_session = "s"; _ } -> true
             | _ -> false)
           recovered);
      let rep = Cluster.Replica.create ~backoff_ms:20 follower leader_addr in
      let rep_th = Thread.create Cluster.Replica.run rep in
      Fun.protect
        ~finally:(fun () ->
          Cluster.Replica.stop rep;
          Thread.join rep_th;
          Store.close fstore)
        (fun () ->
          Alcotest.(check bool) "restarted follower catches up" true
            (wait_until (caught_up follower));
          check_follower_matches_leader ~leader ~follower ~session:"s" g))

(* ---- the router ------------------------------------------------------ *)

let with_net srv f =
  let net = Net.Server.create srv (Net.Server.Tcp ("127.0.0.1", 0)) in
  let th = Thread.create Net.Server.run net in
  Fun.protect
    ~finally:(fun () ->
      Net.Server.stop net;
      Thread.join th)
    (fun () -> f (Net.Server.bound_addr net))

let with_router ?config ~leader backends f =
  let rt = Cluster.Router.create ?config ~leader backends (Net.Server.Tcp ("127.0.0.1", 0)) in
  let th = Thread.create Cluster.Router.run rt in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Router.stop rt;
      Thread.join th)
    (fun () -> f (Cluster.Router.bound_addr rt))

(* three independent backends, all holding [g] under [session] *)
let with_backends g ~session k =
  let mk () =
    let srv = Service.Server.create () in
    let resp = Service.Server.handle_request srv (open_request ~session g) in
    if not (resp_ok resp) then Alcotest.fail "backend open failed";
    srv
  in
  let s0 = mk () and s1 = mk () and s2 = mk () in
  with_net s0 @@ fun a0 ->
  with_net s1 @@ fun a1 ->
  with_net s2 @@ fun a2 -> k (s0, s1, s2) [ a0; a1; a2 ]

let batch_line ~session ~id queries =
  J.to_string
    (J.Obj
       [ ("id", J.Int id); ("op", J.String "batch_lookup");
         ("session", J.String session);
         ( "queries",
           J.List
             (List.map
                (fun (cls, m) ->
                  J.Obj [ ("class", J.String cls); ("member", J.String m) ])
                queries) ) ])

let result_matches_oracle g (cls, member) r =
  let field name =
    match J.member name r with Ok (J.String s) -> Some s | _ -> None
  in
  field "class" = Some cls
  && field "member" = Some member
  &&
  match G.find_opt g cls with
  | None -> field "error" = Some "unknown_class"
  | Some c ->
    (match Spec.lookup_static g c member with
    | Spec.Resolved p ->
      field "verdict" = Some "red"
      && field "resolves_to" = Some (G.name g (Path.ldc p))
    | Spec.Ambiguous _ -> field "verdict" = Some "blue"
    | Spec.Undeclared -> field "verdict" = Some "none")

let check_batch_response g ~queries ~id resp =
  match J.of_string resp with
  | Error e -> Alcotest.failf "unparseable router response: %s" e
  | Ok j ->
    if not (resp_ok j) then
      Alcotest.failf "router answered an error: %s" resp;
    Alcotest.(check bool) "id echoed" true (J.member "id" j = Ok (J.Int id));
    let results =
      match J.member "results" j with
      | Ok (J.List rs) -> rs
      | _ -> Alcotest.fail "no results array"
    in
    Alcotest.(check int) "one result per query, in order"
      (List.length queries) (List.length results);
    List.iteri
      (fun i (q, r) ->
        if not (result_matches_oracle g q r) then
          Alcotest.failf "result %d (%s, %s) diverges from the oracle: %s" i
            (fst q) (snd q) (J.to_string r))
      (List.combine queries results)

let prop_router_merge_matches_oracle =
  let qc_members = [ "m"; "n"; "p" ] in
  let instance_gen =
    QCheck.Gen.(
      map
        (fun (n, max_bases, vp, dp, seed) ->
          Hiergen.Families.random_dag ~n ~max_bases
            ~virtual_prob:(float_of_int vp /. 10.)
            ~declare_prob:(float_of_int dp /. 10.)
            ~members:qc_members ~seed)
        (tup5 (int_range 1 10) (int_range 1 3) (int_range 0 10)
           (int_range 1 6) (int_range 0 10000)))
  in
  let instance_arb =
    QCheck.make instance_gen ~print:(fun i ->
        i.Hiergen.Families.description ^ "\n"
        ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)
  in
  QCheck.Test.make ~count:8
    ~name:"routed batch_lookup over 3 backends = spec oracle" instance_arb
    (fun { Hiergen.Families.graph = g; _ } ->
      with_backends g ~session:"q" (fun _ addrs ->
          with_router ~leader:0 addrs @@ fun raddr ->
          let cl = Net.Client.connect raddr in
          let queries =
            List.map
              (fun (q : W.query) -> (G.name g q.W.q_class, q.W.q_member))
              (W.exhaustive g)
            @ [ ("NoSuchClass", "m") ]
          in
          (match Net.Client.request cl (batch_line ~session:"q" ~id:77 queries) with
          | Some resp -> check_batch_response g ~queries ~id:77 resp
          | None -> Alcotest.fail "router closed the connection");
          Net.Client.close cl;
          true))

let test_router_forwards_mutations_to_leader () =
  let g = graph () in
  with_backends g ~session:"s" (fun (s0, s1, s2) addrs ->
      with_router ~leader:0 addrs @@ fun raddr ->
      let cl = Net.Client.connect raddr in
      let line =
        J.to_string
          (J.Obj
             [ ("id", J.Int 1); ("op", J.String "mutate");
               ("session", J.String "s");
               ( "add_member",
                 J.Obj
                   [ ("class", J.String "A");
                     ("member", J.Obj [ ("name", J.String "routed") ]) ] ) ])
      in
      (match Net.Client.request cl line with
      | Some resp ->
        (match J.of_string resp with
        | Ok j when resp_ok j -> ()
        | _ -> Alcotest.failf "forwarded mutation failed: %s" resp)
      | None -> Alcotest.fail "router closed the connection");
      Net.Client.close cl;
      Alcotest.(check int) "leader advanced" 1 (session_epoch s0 "s");
      Alcotest.(check int) "replica 1 untouched" 0 (session_epoch s1 "s");
      Alcotest.(check int) "replica 2 untouched" 0 (session_epoch s2 "s"))

let test_router_fails_over_and_reports_unavailable () =
  let g = graph () in
  let session = "f" in
  let srv = Service.Server.create () in
  Alcotest.(check bool) "open" true
    (resp_ok (Service.Server.handle_request srv (open_request ~session g)));
  (* backend 1 exists; backend 2 is a dead address: reads must fail
     over to the live one, and once the live one is gone too the
     answer is an explicit backend_unavailable *)
  let dead =
    (* bind and immediately close: a port that refuses connections *)
    let fd, bound = Net.Server.listen_on (Net.Server.Tcp ("127.0.0.1", 0)) in
    Unix.close fd;
    bound
  in
  let config = { Cluster.Router.retries = 0; backoff_ms = 10 } in
  with_net srv @@ fun live ->
  with_router ~config ~leader:0 [ live; dead ] @@ fun raddr ->
  let cl = Net.Client.connect raddr in
  let q = batch_line ~session ~id:5 [ ("C", "m") ] in
  (match Net.Client.request cl q with
  | Some resp ->
    (match J.of_string resp with
    | Ok j when resp_ok j -> ()
    | _ -> Alcotest.failf "failover read failed: %s" resp)
  | None -> Alcotest.fail "router closed the connection");
  Net.Client.close cl;
  (* now both dead: a fresh router over two dead addresses *)
  with_router ~config ~leader:0 [ dead; dead ] @@ fun raddr ->
  let cl = Net.Client.connect raddr in
  (match Net.Client.request cl q with
  | Some resp ->
    (match J.of_string resp with
    | Ok j ->
      Alcotest.(check string) "explicit unavailable" "backend_unavailable"
        (resp_error_code j)
    | Error e -> Alcotest.failf "unparseable: %s" e)
  | None -> Alcotest.fail "router closed the connection");
  Net.Client.close cl

let suite =
  [ Alcotest.test_case "wal tail: concurrent append" `Quick
      test_tail_concurrent_append;
    Alcotest.test_case "wal tail: torn frame completes" `Quick
      test_tail_completes_torn_frame;
    Alcotest.test_case "wal tail: shrink = reset" `Quick
      test_tail_reset_on_shrink;
    Alcotest.test_case "client backoff bounds" `Quick test_backoff_bounds;
    Alcotest.test_case "client connect retries" `Quick
      test_connect_retries_until_listener_appears;
    QCheck_alcotest.to_alcotest prop_b64_roundtrip;
    Alcotest.test_case "wire hello roundtrip" `Quick test_hello_roundtrip;
    Alcotest.test_case "wire wal roundtrip" `Quick test_wal_line_roundtrip;
    Alcotest.test_case "follower rejects mutations" `Quick
      test_follower_rejects_mutations;
    Alcotest.test_case "replicated apply rejects gaps" `Quick
      test_apply_replicated_gap_rejected;
    Alcotest.test_case "replication catch-up + restart" `Quick
      test_replication_catch_up_and_restart;
    QCheck_alcotest.to_alcotest prop_router_merge_matches_oracle;
    Alcotest.test_case "router forwards mutations to leader" `Quick
      test_router_forwards_mutations_to_leader;
    Alcotest.test_case "router failover + explicit unavailable" `Quick
      test_router_fails_over_and_reports_unavailable ]
