let () =
  Alcotest.run "cxxlookup"
    [ ("bitset", Test_bitset.suite);
      ("chg", Test_chg.suite);
      ("path", Test_path.suite);
      ("spec", Test_spec.suite);
      ("sgraph", Test_sgraph.suite);
      ("engine", Test_engine.suite);
      ("baselines", Test_baselines.suite);
      ("mro", Test_mro.suite);
      ("frontend", Test_frontend.suite);
      ("frontend-more", Test_more_frontend.suite);
      ("scopes", Test_scopes.suite);
      ("layout", Test_layout.suite);
      ("rf_ops", Test_rf_ops.suite);
      ("incremental", Test_incremental.suite);
      ("serialize", Test_serialize.suite);
      ("runtime", Test_runtime.suite);
      ("analysis", Test_analysis.suite);
      ("lint", Test_lint.suite);
      ("workload", Test_workload.suite);
      ("slicing", Test_slicing.suite);
      ("telemetry", Test_telemetry.suite);
      ("observability", Test_observability.suite);
      ("service", Test_service.suite);
      ("store", Test_store.suite);
      ("net", Test_net.suite);
      ("cluster", Test_cluster.suite);
      ("packed", Test_packed.suite);
      ("raw", Test_raw.suite);
      ("properties", Test_props.suite) ]
